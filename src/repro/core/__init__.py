"""DUST core — the paper's primary contribution.

Role assignment, threshold policy (Δ_io), the control-plane protocol,
the NMDB, the Eq.-3 placement engine, Algorithm 1, the manager/client
runtimes and the post-offload machinery.
"""

from __future__ import annotations

from repro.core.audit import AuditReport, audit_system
from repro.core.client import DUSTClient, HostedWorkload
from repro.core.heuristic import HeuristicReport, solve_heuristic
from repro.core.manager import DUSTManager, ManagerCounters
from repro.core.messages import (
    Ack,
    ControlMessage,
    Keepalive,
    MessageType,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Reclaim,
    Redirect,
    Rep,
    Stat,
)
from repro.core.metrics import (
    SuccessCategory,
    SuccessRateSummary,
    categorize_iteration,
    fit_power_law,
    hfr_pct,
    infeasible_rate_pct,
    mean_hops,
    summarize_categories,
)
from repro.core.multiresource import (
    DEFAULT_RESOURCES,
    MultiResourceProblem,
    MultiResourceReport,
    solve_multiresource,
)
from repro.core.nms import (
    MonitoringRequest,
    NetworkMonitorService,
    TriggerEvent,
    default_catalog,
)
from repro.core.nmdb import NMDB, NetworkSnapshot, NodeRecord
from repro.core.offload import ActiveOffload, OffloadLedger, OffloadPlan
from repro.core.placement import (
    PlacementAssignment,
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
    PlacementSession,
)
from repro.core.postoffload import (
    KeepaliveTracker,
    QoSClass,
    ReplicaSelector,
    StrictPriorityQueue,
    TransmissionOutcome,
)
from repro.core.zoning import (
    Zone,
    ZonedPlacementEngine,
    ZonedPlacementReport,
    partition_bfs,
    partition_by_pod,
    validate_partition,
)
from repro.core.roles import NodeRole, RoleAssignment, classify_network, classify_node
from repro.core.thresholds import RECOMMENDED_K_IO, ThresholdPolicy

__all__ = [
    "ActiveOffload",
    "AuditReport",
    "audit_system",
    "Ack",
    "ControlMessage",
    "DUSTClient",
    "DUSTManager",
    "HeuristicReport",
    "HostedWorkload",
    "Keepalive",
    "KeepaliveTracker",
    "ManagerCounters",
    "MessageType",
    "MonitoringRequest",
    "MultiResourceProblem",
    "MultiResourceReport",
    "DEFAULT_RESOURCES",
    "solve_multiresource",
    "NetworkMonitorService",
    "TriggerEvent",
    "default_catalog",
    "NMDB",
    "NetworkSnapshot",
    "NodeRecord",
    "NodeRole",
    "OffloadAck",
    "OffloadCapable",
    "OffloadLedger",
    "OffloadPlan",
    "OffloadRequest",
    "PlacementAssignment",
    "PlacementEngine",
    "PlacementProblem",
    "PlacementReport",
    "PlacementSession",
    "QoSClass",
    "RECOMMENDED_K_IO",
    "Reclaim",
    "Redirect",
    "Rep",
    "ReplicaSelector",
    "RoleAssignment",
    "Stat",
    "Zone",
    "ZonedPlacementEngine",
    "ZonedPlacementReport",
    "partition_bfs",
    "partition_by_pod",
    "validate_partition",
    "StrictPriorityQueue",
    "SuccessCategory",
    "SuccessRateSummary",
    "ThresholdPolicy",
    "TransmissionOutcome",
    "categorize_iteration",
    "classify_network",
    "classify_node",
    "fit_power_law",
    "hfr_pct",
    "infeasible_rate_pct",
    "mean_hops",
    "solve_heuristic",
    "summarize_categories",
]
