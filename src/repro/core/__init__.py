"""DUST core — the paper's primary contribution.

Role assignment, threshold policy (Δ_io), the control-plane protocol,
the NMDB, the Eq.-3 placement engine, Algorithm 1, the manager/client
runtimes and the post-offload machinery.
"""

from __future__ import annotations

from repro.core.audit import AuditReport, audit_system
from repro.core.client import DUSTClient, HostedWorkload
from repro.core.degradation import DegradationLadder, DegradationLevel, LadderConfig
from repro.core.failover import ManagerSnapshot, SnapshotStore, StandbyManager
from repro.core.heuristic import (
    HeuristicReport,
    solve_heuristic,
    solve_heuristic_reference,
)
from repro.core.manager import DUSTManager, ManagerCounters
from repro.core.messages import (
    Ack,
    ControlMessage,
    DedupCache,
    Keepalive,
    ManagerHeartbeat,
    MessageType,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Receipt,
    Reclaim,
    Redirect,
    ReliableSender,
    Rep,
    Resync,
    RetryPolicy,
    Stat,
)
from repro.core.metrics import (
    SuccessCategory,
    SuccessRateSummary,
    assignment_signature,
    categorize_iteration,
    fit_power_law,
    hfr_pct,
    infeasible_rate_pct,
    mean_hops,
    message_overhead_pct,
    placement_divergence,
    recovery_time_s,
    relief_by_source,
    relief_divergence,
    summarize_categories,
)
from repro.core.multiresource import (
    DEFAULT_RESOURCES,
    MultiResourceProblem,
    MultiResourceReport,
    solve_multiresource,
)
from repro.core.nms import (
    MonitoringRequest,
    NetworkMonitorService,
    TriggerEvent,
    default_catalog,
)
from repro.core.nmdb import NMDB, NetworkSnapshot, NodeRecord
from repro.core.offload import ActiveOffload, OffloadLedger, OffloadPlan
from repro.core.placement import (
    PlacementAssignment,
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
    PlacementSession,
)
from repro.core.postoffload import (
    KeepaliveTracker,
    QoSClass,
    ReplicaSelector,
    StrictPriorityQueue,
    TransmissionOutcome,
)
from repro.core.zoning import (
    Zone,
    ZonedPlacementEngine,
    ZonedPlacementReport,
    partition_bfs,
    partition_by_pod,
    validate_partition,
)
from repro.core.roles import NodeRole, RoleAssignment, classify_network, classify_node
from repro.core.thresholds import RECOMMENDED_K_IO, ThresholdPolicy

__all__ = [
    "ActiveOffload",
    "AuditReport",
    "audit_system",
    "Ack",
    "ControlMessage",
    "DUSTClient",
    "DUSTManager",
    "DedupCache",
    "DegradationLadder",
    "DegradationLevel",
    "LadderConfig",
    "HeuristicReport",
    "HostedWorkload",
    "Keepalive",
    "KeepaliveTracker",
    "ManagerCounters",
    "ManagerHeartbeat",
    "ManagerSnapshot",
    "MessageType",
    "MonitoringRequest",
    "MultiResourceProblem",
    "MultiResourceReport",
    "DEFAULT_RESOURCES",
    "solve_multiresource",
    "NetworkMonitorService",
    "TriggerEvent",
    "default_catalog",
    "NMDB",
    "NetworkSnapshot",
    "NodeRecord",
    "NodeRole",
    "OffloadAck",
    "OffloadCapable",
    "OffloadLedger",
    "OffloadPlan",
    "OffloadRequest",
    "PlacementAssignment",
    "PlacementEngine",
    "PlacementProblem",
    "PlacementReport",
    "PlacementSession",
    "QoSClass",
    "RECOMMENDED_K_IO",
    "Receipt",
    "Reclaim",
    "Redirect",
    "ReliableSender",
    "Rep",
    "ReplicaSelector",
    "Resync",
    "RetryPolicy",
    "RoleAssignment",
    "SnapshotStore",
    "StandbyManager",
    "Stat",
    "Zone",
    "ZonedPlacementEngine",
    "ZonedPlacementReport",
    "partition_bfs",
    "partition_by_pod",
    "validate_partition",
    "StrictPriorityQueue",
    "SuccessCategory",
    "SuccessRateSummary",
    "ThresholdPolicy",
    "TransmissionOutcome",
    "assignment_signature",
    "categorize_iteration",
    "classify_network",
    "classify_node",
    "fit_power_law",
    "hfr_pct",
    "infeasible_rate_pct",
    "mean_hops",
    "message_overhead_pct",
    "placement_divergence",
    "recovery_time_s",
    "relief_by_source",
    "relief_divergence",
    "solve_heuristic",
    "solve_heuristic_reference",
    "summarize_categories",
]
