"""Threshold policy: ``C_max``, ``CO_max``, ``x_min`` and Δ_io (Eq. 5).

A node is *Busy* when its utilized capacity is at/above ``C_max`` and an
*Offload-candidate* when at/below ``CO_max``. The paper's Δ parameter

    Δ_io = (CO_max − x_min) / (100 − C_max)

predicts how often the placement optimization is feasible: it is the
ratio of expected spare candidate capacity to expected busy overflow.
Fig. 7 sweeps Δ_io from 0.8 to 3.5 and recommends configuring
``K_io >= 2`` (i.e. choosing thresholds with Δ_io ≥ 2) to keep the
Infeasible-Optimization rate near zero.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import CapacityError

#: The paper's recommended lower bound on Δ_io.
RECOMMENDED_K_IO = 2.0


@dataclass(frozen=True)
class ThresholdPolicy:
    """User-defined capacity thresholds, all in percent.

    Attributes
    ----------
    c_max:
        Busy threshold: utilized capacity ≥ ``c_max`` ⇒ Busy node.
    co_max:
        Candidate threshold: utilized capacity ≤ ``co_max`` ⇒
        Offload-candidate node.
    x_min:
        Minimum utilized capacity any node can report (constraint 3e).
    """

    c_max: float = 80.0
    co_max: float = 50.0
    x_min: float = 10.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.x_min < 100.0:
            raise CapacityError(f"x_min must be in [0, 100), got {self.x_min}")
        if not self.x_min <= self.co_max <= 100.0:
            raise CapacityError(
                f"co_max must be in [x_min, 100] = [{self.x_min}, 100], got {self.co_max}"
            )
        if not 0.0 < self.c_max <= 100.0:
            raise CapacityError(f"c_max must be in (0, 100], got {self.c_max}")
        if self.co_max >= self.c_max:
            raise CapacityError(
                f"co_max ({self.co_max}) must be below c_max ({self.c_max}): a node "
                "cannot be simultaneously a Busy and an Offload-candidate node"
            )

    # -- classification -----------------------------------------------------------
    def is_busy(self, capacity_pct: float) -> bool:
        """Busy iff utilized capacity ≥ ``C_max``."""
        return capacity_pct >= self.c_max

    def is_candidate(self, capacity_pct: float) -> bool:
        """Offload-candidate iff utilized capacity ≤ ``CO_max``."""
        return capacity_pct <= self.co_max

    # -- paper quantities --------------------------------------------------------------
    def excess_load(self, capacity_pct: float) -> float:
        """``Cs_i = C_i − C_max`` for a Busy node (0 otherwise) — 3c."""
        return max(0.0, capacity_pct - self.c_max)

    def spare_capacity(self, capacity_pct: float) -> float:
        """``Cd_j = CO_max − C_j`` for a candidate (0 otherwise) — 3d."""
        if capacity_pct > self.co_max:
            return 0.0
        return self.co_max - capacity_pct

    @property
    def delta_o(self) -> float:
        """Numerator of Eq. 5: ``CO_max − x_min``."""
        return self.co_max - self.x_min

    @property
    def delta_b(self) -> float:
        """Denominator of Eq. 5: ``100 − C_max``."""
        return 100.0 - self.c_max

    @property
    def delta_io(self) -> float:
        """Eq. 5 feasibility parameter; ``inf`` when ``c_max == 100``
        (busy nodes then carry zero offloadable excess)."""
        if self.delta_b == 0.0:
            return float("inf")
        return self.delta_o / self.delta_b

    def satisfies_k_io(self, k_io: float = RECOMMENDED_K_IO) -> bool:
        """Whether this policy meets the paper's Δ_io ≥ K_io guidance."""
        return self.delta_io >= k_io

    @classmethod
    def with_delta_io(
        cls, delta_io: float, c_max: float = 80.0, x_min: float = 10.0
    ) -> "ThresholdPolicy":
        """Construct a policy achieving a target Δ_io by solving Eq. 5
        for ``co_max`` (clamped into its legal range)."""
        if delta_io <= 0:
            raise CapacityError(f"delta_io must be positive, got {delta_io}")
        co_max = x_min + delta_io * (100.0 - c_max)
        if co_max >= c_max:
            raise CapacityError(
                f"target delta_io={delta_io} requires co_max={co_max:.1f} >= "
                f"c_max={c_max}; lower delta_io, raise c_max, or lower x_min"
            )
        return cls(c_max=c_max, co_max=co_max, x_min=x_min)
