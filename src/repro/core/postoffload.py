"""Post-offloading processes (paper Section III-C).

Three mechanisms keep an established offload healthy:

* **QoS guarantees** — exported monitoring traffic is tagged with the
  *lowest* priority class so a congested destination path drops
  monitoring data before production traffic ("safely discarded in the
  event of network congestion"); :class:`StrictPriorityQueue` models a
  strict-priority egress and reports exactly which class lost data.
* **Keepalive tracking** — offload destinations heartbeat the manager;
  :class:`KeepaliveTracker` flags destinations whose keepalive is
  older than the timeout.
* **Replica substitution** — :class:`ReplicaSelector` picks the
  next-best candidate for a failed destination's workload (the node
  the manager notifies with a REP message).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.core.thresholds import ThresholdPolicy
from repro.errors import PlacementError, ProtocolError
from repro.routing.response_time import ResponseTimeModel
from repro.topology.graph import Topology


class QoSClass(enum.IntEnum):
    """Strict-priority traffic classes; lower value = higher priority.

    Monitoring offload data is pinned to :attr:`MONITORING_OFFLOAD`,
    the lowest class, per the paper's QoS guarantee.
    """

    NETWORK_CONTROL = 0
    PRODUCTION = 1
    BULK = 2
    MONITORING_OFFLOAD = 3


@dataclass(frozen=True)
class TransmissionOutcome:
    """Delivered/dropped megabits per class for one egress interval."""

    delivered_mb: Mapping[QoSClass, float]
    dropped_mb: Mapping[QoSClass, float]

    def delivered(self, cls: QoSClass) -> float:
        return self.delivered_mb.get(cls, 0.0)

    def dropped(self, cls: QoSClass) -> float:
        return self.dropped_mb.get(cls, 0.0)

    @property
    def production_loss_mb(self) -> float:
        """Loss in any class *above* monitoring — must be zero whenever
        the link could have carried the non-monitoring load alone."""
        return float(
            sum(v for c, v in self.dropped_mb.items() if c is not QoSClass.MONITORING_OFFLOAD)
        )


class StrictPriorityQueue:
    """Models one egress link interval under strict-priority scheduling."""

    def __init__(self, capacity_mb: float) -> None:
        if capacity_mb < 0:
            raise PlacementError(f"link capacity must be non-negative, got {capacity_mb}")
        self.capacity_mb = capacity_mb

    def transmit(self, offered_mb: Mapping[QoSClass, float]) -> TransmissionOutcome:
        """Serve classes highest-priority-first until capacity runs out."""
        remaining = self.capacity_mb
        delivered: Dict[QoSClass, float] = {}
        dropped: Dict[QoSClass, float] = {}
        for cls in sorted(offered_mb, key=lambda c: int(c)):
            volume = float(offered_mb[cls])
            if volume < 0:
                raise PlacementError(f"offered volume for {cls} is negative")
            sent = min(volume, remaining)
            delivered[cls] = sent
            dropped[cls] = volume - sent
            remaining -= sent
        return TransmissionOutcome(delivered_mb=delivered, dropped_mb=dropped)


class KeepaliveTracker:
    """Tracks destination heartbeats and flags expirations."""

    def __init__(self, timeout_s: float) -> None:
        if timeout_s <= 0:
            raise ProtocolError(f"keepalive timeout must be positive, got {timeout_s}")
        self.timeout_s = timeout_s
        self._last_seen: Dict[int, float] = {}

    def record(self, node_id: int, timestamp: float) -> None:
        """Register a keepalive from ``node_id``."""
        previous = self._last_seen.get(node_id, float("-inf"))
        self._last_seen[node_id] = max(previous, timestamp)

    def watch(self, node_id: int, timestamp: float) -> None:
        """Start expecting keepalives from a new destination (its grace
        period starts now)."""
        self._last_seen.setdefault(node_id, timestamp)

    def forget(self, node_id: int) -> None:
        """Stop tracking a node (offload reclaimed or reassigned)."""
        self._last_seen.pop(node_id, None)

    def last_seen(self, node_id: int) -> Optional[float]:
        return self._last_seen.get(node_id)

    def expired(self, now: float) -> List[int]:
        """Tracked nodes whose last keepalive is older than the timeout."""
        return sorted(
            node
            for node, seen in self._last_seen.items()
            if now - seen > self.timeout_s
        )

    def export(self) -> Dict[int, float]:
        """Copy of the watch table — the keepalive part of a manager
        snapshot."""
        return dict(self._last_seen)

    @property
    def tracked(self) -> Tuple[int, ...]:
        return tuple(sorted(self._last_seen))


class ReplicaSelector:
    """Chooses the replacement destination after a failure.

    The replica is the feasible candidate (spare capacity ≥ the failed
    amount, not the failed node, not the source) with the smallest
    ``Trmin`` from the workload's source — the same objective the
    original placement optimized.
    """

    def __init__(self, response_model: ResponseTimeModel) -> None:
        self.response_model = response_model

    def select(
        self,
        topology: Topology,
        source: int,
        amount_pct: float,
        data_mb: float,
        capacities: Sequence[float],
        policy: ThresholdPolicy,
        exclude: Sequence[int] = (),
    ) -> Optional[int]:
        """Best replica node id, or ``None`` when no candidate fits."""
        caps = np.asarray(capacities, dtype=float)
        excluded = set(exclude) | {source}
        feasible = [
            j
            for j in range(caps.size)
            if j not in excluded
            and policy.is_candidate(caps[j])
            and policy.spare_capacity(caps[j]) + 1e-9 >= amount_pct
        ]
        if not feasible:
            return None
        R, hops, _ = self.response_model.resistance_matrix(topology, [source], feasible)
        costs = data_mb * R[0]
        order = np.lexsort((hops[0], costs))
        for idx in order:
            if np.isfinite(costs[idx]):
                return int(feasible[idx])
        return None
