"""Algorithm 1 — the one-hop min-cost heuristic.

For every Busy node the heuristic restricts the candidate set to
*directly connected* Offload-candidate nodes (``max-hop = 1``) and
solves the per-node min-cost fill; with a single supply the optimal
fill is cheapest-lane-first greedy, which is what the implementation
does. Candidate spare capacity is a shared pool: busy nodes are
processed in ascending node-id order (deterministic) and each
consumes capacity its successors no longer see — exactly the partial
failure mode the paper quantifies with the Heuristic Failure Rate

    HFR(%) = Σ_i Cse_i / Σ_i Cs_i · 100          (Eq. 4)

where ``Cse_i`` is the load node *i* could not place one hop away.

Two implementations produce bit-identical :class:`HeuristicReport`\\ s
(asserted over hundreds of random instances in
``tests/core/test_heuristic_kernel.py``):

* :func:`solve_heuristic_reference` — the readable per-node Python
  loop over ``topology.incident()``;
* the **vectorized kernel** behind :func:`solve_heuristic` — for the
  paper's radius 1 it gathers every busy node's one-hop lanes with one
  ``indptr`` slice of the topology's cached CSR adjacency, prices and
  orders all lanes with a single ``np.lexsort`` (cost, then stable
  adjacency order), and only falls back to Python for the short
  cheapest-first fill over lanes that actually carry load. On the
  16-k fat-tree this is the difference between milliseconds and the
  pure-Python lane loop (``benchmarks/bench_heuristic_kernel.py``
  gates the speedup at ≥ 5×).

The ``hop_radius`` parameter generalizes the algorithm to r-hop
neighborhoods (radius 1 is the paper's Algorithm 1); wider radii take
the reference path (counted on ``heuristic.kernel.fallbacks``) since
multi-hop pricing goes through the Trmin engine, not the CSR arrays.
"""

from __future__ import annotations

import time
from collections.abc import Sequence
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.placement import PlacementAssignment, PlacementProblem
from repro.errors import PlacementError
from repro.obs import get_registry, trace_span
from repro.routing.engine import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.routing.routes import Path
from repro.topology.links import BandwidthConvention

_TOL = 1e-9


class _LazyAssignments(Sequence):
    """Tuple-compatible view over the kernel's raw placement records.

    The sweep experiments (fig10-12) call the solver thousands of times
    and only ever read the aggregate HFR fields, so the kernel's hot
    loop records each placement as one small tuple and defers building
    the :class:`Path` / :class:`PlacementAssignment` objects until a
    consumer (zoning relief, the manager, tests) actually touches the
    sequence. Materialization happens once and is cached; iteration,
    indexing, ``len()``, truthiness and ``==`` against plain tuples all
    behave exactly like the tuple the reference solver returns.
    """

    __slots__ = ("_records", "_candidates", "_built")

    def __init__(
        self,
        records: List[Tuple[int, int, float, float, int, int]],
        candidates: Tuple[int, ...],
    ) -> None:
        # records: (busy_node, candidate_slot, take, cost, nbr, edge_id)
        self._records = records
        self._candidates = candidates
        self._built: Optional[Tuple[PlacementAssignment, ...]] = None

    def _materialize(self) -> Tuple[PlacementAssignment, ...]:
        built = self._built
        if built is None:
            candidates = self._candidates
            new = object.__new__
            out = []
            for busy_node, b, take, cost, nbr, eid in self._records:
                # Trusted fast construction (cf. Link.trusted): same
                # field values and ordering as the reference's
                # Path(...) / PlacementAssignment(...) calls.
                route = new(Path)
                route.__dict__.update(nodes=(busy_node, nbr), edges=(eid,))
                assignment = new(PlacementAssignment)
                assignment.__dict__.update(
                    busy=busy_node,
                    candidate=candidates[b],
                    amount_pct=take,
                    response_time_s=cost,
                    hops=1,
                    route=route,
                )
                out.append(assignment)
            built = self._built = tuple(out)
        return built

    def __len__(self) -> int:
        return len(self._records)

    def __bool__(self) -> bool:
        return bool(self._records)

    def __iter__(self):
        return iter(self._materialize())

    def __getitem__(self, index):
        return self._materialize()[index]

    def __eq__(self, other) -> bool:
        if isinstance(other, _LazyAssignments):
            other = other._materialize()
        if isinstance(other, tuple):
            return self._materialize() == other
        return NotImplemented

    __hash__ = None  # has interior mutable state (the cache)

    def __repr__(self) -> str:
        return repr(self._materialize())


@dataclass(frozen=True)
class HeuristicReport:
    """Outcome of one heuristic run (Algorithm 1)."""

    # A tuple from the reference solver; the kernel returns a
    # _LazyAssignments, which behaves identically (compares equal to
    # the corresponding tuple) but defers object construction.
    assignments: Sequence[PlacementAssignment]
    offloaded_per_busy: Dict[int, float]
    failed_per_busy: Dict[int, float]  # the Cse_i of Eq. 4
    total_seconds: float
    hop_radius: int

    @property
    def total_offloaded(self) -> float:
        return float(sum(self.offloaded_per_busy.values()))

    @property
    def total_failed(self) -> float:
        return float(sum(self.failed_per_busy.values()))

    @property
    def total_required(self) -> float:
        return self.total_offloaded + self.total_failed

    @property
    def hfr_pct(self) -> float:
        """Eq. 4; 0 when there was nothing to offload."""
        required = self.total_required
        if required <= _TOL:
            return 0.0
        return 100.0 * self.total_failed / required

    @property
    def fully_offloaded(self) -> bool:
        return self.total_failed <= _TOL

    @property
    def nothing_offloaded(self) -> bool:
        return self.total_offloaded <= _TOL and self.total_failed > _TOL


def solve_heuristic(
    problem: PlacementProblem,
    hop_radius: int = 1,
    convention: BandwidthConvention = BandwidthConvention.AVAILABLE,
    trmin_engine: Optional[TrminEngine] = None,
) -> HeuristicReport:
    """Run Algorithm 1 (generalized to ``hop_radius``) on ``problem``.

    The problem's ``max_hops`` is ignored: the heuristic's whole point
    is the fixed small radius. Radius 1 runs the vectorized CSR kernel
    (bit-identical to :func:`solve_heuristic_reference`); wider radii
    fall back to the reference loop — when a ``trmin_engine`` is
    supplied there, lane pricing goes through its (parallel,
    version-cached) matrix instead of one DP per busy node.
    """
    if hop_radius < 1:
        raise PlacementError(f"hop_radius must be >= 1, got {hop_radius}")
    if hop_radius == 1:
        return _solve_kernel(problem, convention)
    get_registry().counter("heuristic.kernel.fallbacks").inc()
    return solve_heuristic_reference(
        problem, hop_radius=hop_radius, convention=convention, trmin_engine=trmin_engine
    )


def _solve_kernel(
    problem: PlacementProblem, convention: BandwidthConvention
) -> HeuristicReport:
    """Vectorized radius-1 kernel over the cached CSR adjacency."""
    start = time.perf_counter()
    topology = problem.topology
    busy = problem.busy
    candidates = problem.candidates
    n_busy, n_cand = len(busy), len(candidates)

    # Same dict shapes and insertion order as the reference; busy nodes
    # that place nothing keep their full need as Eq. 4 failure.
    need_list = problem.cs.tolist()
    offloaded: Dict[int, float] = {node: 0.0 for node in busy}
    failed: Dict[int, float] = {
        node: (need_a if need_a > _TOL else 0.0)
        for node, need_a in zip(busy, need_list)
    }
    records: List[Tuple[int, int, float, float, int, int]] = []

    with trace_span("heuristic.kernel", busy=n_busy, candidates=n_cand):
        registry = get_registry()
        registry.histogram(
            "heuristic.kernel.batch_size", unit="busy-nodes"
        ).observe(float(n_busy))
        if n_busy and n_cand and topology.num_edges:
            csr = topology.csr_adjacency(convention)
            # Same arithmetic as ResponseTimeModel.edge_weights, so lane
            # costs match the reference bit-for-bit.
            weights = csr.edge_costs

            cand_of = np.full(topology.num_nodes, -1, dtype=np.int64)
            cand_of[np.asarray(candidates, dtype=np.int64)] = np.arange(
                n_cand, dtype=np.int64
            )
            busy_arr = np.asarray(busy, dtype=np.int64)
            need_arr = problem.cs

            # One-hop candidate lanes for every busy node at once:
            # ragged indptr slices flattened into lane arrays.
            starts = csr.indptr[busy_arr]
            counts = (csr.indptr[busy_arr + 1] - starts) * (need_arr > _TOL)
            total = int(counts.sum())
            if total:
                before = np.concatenate(([0], np.cumsum(counts)[:-1]))
                pos = np.repeat(starts - before, counts) + np.arange(total)
                row = np.repeat(np.arange(n_busy), counts)
                nbr = csr.indices[pos]
                cand_idx = cand_of[nbr]
                keep = cand_idx >= 0
                row, nbr, cand_idx = row[keep], nbr[keep], cand_idx[keep]
                eid = csr.edge_ids[pos[keep]]
                cost = problem.data_mb[row] * weights[eid]
                # Group by busy row, cheapest first; lexsort is stable,
                # so cost ties keep adjacency order like the reference
                # list sort does.
                order = np.lexsort((cost, row))

                # The cheapest-first fill is a single linear pass over
                # the sorted lanes. It runs on plain Python lists —
                # tolist() is one C call, and per-lane list indexing is
                # ~10x cheaper than numpy scalar indexing — with the
                # reference's exact scalar arithmetic (sequential
                # min/subtract, not a cumsum), so amounts, lane order
                # and residual capacity are bit-identical.
                row_sorted = row[order]
                nbr_l = nbr[order].tolist()
                cand_l = cand_idx[order].tolist()
                eid_l = eid[order].tolist()
                cost_l = cost[order].tolist()
                need_l = need_list
                remaining_l = problem.cd.tolist()
                # Per-row lane boundaries, so a busy node whose need is
                # exhausted jumps straight to its next row instead of
                # walking (and no-op'ing over) its remaining lanes.
                ends_l = np.searchsorted(
                    row_sorted, np.arange(1, n_busy + 1)
                ).tolist()
                append = records.append
                i = 0
                for a in range(n_busy):
                    end = ends_l[a]
                    if i == end:
                        continue  # preset failed[] already holds the need
                    busy_node = busy[a]
                    need = need_l[a]
                    placed = 0.0
                    while i < end and need > _TOL:
                        b = cand_l[i]
                        r = remaining_l[b]
                        if r > _TOL:
                            take = need if need < r else r
                            remaining_l[b] = r - take
                            need -= take
                            placed += take
                            # Raw record only; PlacementAssignment
                            # objects are built lazily on first access
                            # (see _LazyAssignments).
                            append(
                                (busy_node, b, take, cost_l[i], nbr_l[i], eid_l[i])
                            )
                        i += 1
                    i = end
                    # Same accumulation order as the reference's
                    # `offloaded[busy] += take` (starts at 0.0, adds the
                    # takes in lane order), so the sum is bit-identical.
                    offloaded[busy_node] = placed
                    failed[busy_node] = need if need > 0.0 else 0.0

    return HeuristicReport(
        assignments=_LazyAssignments(records, candidates) if records else (),
        offloaded_per_busy=offloaded,
        failed_per_busy=failed,
        total_seconds=time.perf_counter() - start,
        hop_radius=1,
    )


def solve_heuristic_reference(
    problem: PlacementProblem,
    hop_radius: int = 1,
    convention: BandwidthConvention = BandwidthConvention.AVAILABLE,
    trmin_engine: Optional[TrminEngine] = None,
) -> HeuristicReport:
    """The per-node Python loop — Algorithm 1 as the paper writes it.

    Kept as the executable specification the vectorized kernel is
    tested against, and as the only path for ``hop_radius > 1``. The
    candidate index and the shared residual-capacity array are hoisted
    out of the per-busy loop; residual capacity is consumed across busy
    nodes (never reset) so successors see what predecessors took.
    """
    if hop_radius < 1:
        raise PlacementError(f"hop_radius must be >= 1, got {hop_radius}")
    start = time.perf_counter()
    topology = problem.topology
    candidate_index = {node: b for b, node in enumerate(problem.candidates)}
    candidate_items = tuple(candidate_index.items())
    remaining_cd = problem.cd.copy()

    model = ResponseTimeModel(
        convention=convention, engine=PathEngine.DP, max_hops=hop_radius
    )
    weights = model.edge_weights(topology)

    engine_rows = None
    if hop_radius > 1 and trmin_engine is not None and problem.busy:
        engine_rows = trmin_engine.resistance_matrix(
            topology,
            list(problem.busy),
            list(problem.candidates),
            with_paths=True,
            model=model,
        )

    assignments: List[PlacementAssignment] = []
    offloaded: Dict[int, float] = {}
    failed: Dict[int, float] = {}

    for a, busy in enumerate(problem.busy):
        need = float(problem.cs[a])
        offloaded[busy] = 0.0
        failed[busy] = 0.0
        if need <= _TOL:
            continue
        # Candidate lanes within the radius, priced per Eq. 1.
        lanes: List[Tuple[float, int, int, object]] = []  # (cost, hops, cand, path)
        if hop_radius == 1:
            for nbr, edge_id in topology.incident(busy):
                b = candidate_index.get(nbr)
                if b is None or remaining_cd[b] <= _TOL:
                    continue
                cost = float(problem.data_mb[a] * weights[edge_id])
                path = Path(nodes=(busy, nbr), edges=(edge_id,))
                lanes.append((cost, 1, b, path))
        elif engine_rows is not None:
            R, row_hops, route_paths = engine_rows
            for node, b in candidate_items:
                if node == busy or remaining_cd[b] <= _TOL:
                    continue
                if not np.isfinite(R[a, b]):
                    continue
                cost = float(problem.data_mb[a] * R[a, b])
                lanes.append(
                    (cost, int(row_hops[a, b]), b, route_paths.get((busy, node)))
                )
        else:
            from repro.routing.shortest import hop_constrained_shortest

            result = hop_constrained_shortest(topology, busy, hop_radius, weights)
            best = result.best
            for node, b in candidate_items:
                if node == busy or remaining_cd[b] <= _TOL:
                    continue
                if not np.isfinite(best[node]):
                    continue
                path = result.path_to(node)
                cost = float(problem.data_mb[a] * best[node])
                lanes.append((cost, path.num_hops if path else hop_radius, b, path))

        # Cheapest-first fill (optimal for a single supply).
        lanes.sort(key=lambda lane: (lane[0], lane[1]))
        for cost, hops, b, path in lanes:
            if need <= _TOL:
                break
            take = min(need, float(remaining_cd[b]))
            if take <= _TOL:
                continue
            remaining_cd[b] -= take
            need -= take
            offloaded[busy] += take
            assignments.append(
                PlacementAssignment(
                    busy=busy,
                    candidate=problem.candidates[b],
                    amount_pct=take,
                    response_time_s=cost,
                    hops=hops,
                    route=path,
                )
            )
        failed[busy] = max(0.0, need)

    return HeuristicReport(
        assignments=tuple(assignments),
        offloaded_per_busy=offloaded,
        failed_per_busy=failed,
        total_seconds=time.perf_counter() - start,
        hop_radius=hop_radius,
    )
