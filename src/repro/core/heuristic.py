"""Algorithm 1 — the one-hop min-cost heuristic.

For every Busy node the heuristic restricts the candidate set to
*directly connected* Offload-candidate nodes (``max-hop = 1``) and
solves the per-node min-cost fill; with a single supply the optimal
fill is cheapest-lane-first greedy, which is what the implementation
does. Candidate spare capacity is a shared pool: busy nodes are
processed in ascending node-id order (deterministic) and each
consumes capacity its successors no longer see — exactly the partial
failure mode the paper quantifies with the Heuristic Failure Rate

    HFR(%) = Σ_i Cse_i / Σ_i Cs_i · 100          (Eq. 4)

where ``Cse_i`` is the load node *i* could not place one hop away.

The ``hop_radius`` parameter generalizes the algorithm to r-hop
neighborhoods (radius 1 is the paper's Algorithm 1); the ablation bench
measures how HFR and runtime trade off as the radius grows toward the
full ILP.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.placement import PlacementAssignment, PlacementProblem
from repro.errors import PlacementError
from repro.routing.engine import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.topology.links import BandwidthConvention

_TOL = 1e-9


@dataclass(frozen=True)
class HeuristicReport:
    """Outcome of one heuristic run (Algorithm 1)."""

    assignments: Tuple[PlacementAssignment, ...]
    offloaded_per_busy: Dict[int, float]
    failed_per_busy: Dict[int, float]  # the Cse_i of Eq. 4
    total_seconds: float
    hop_radius: int

    @property
    def total_offloaded(self) -> float:
        return float(sum(self.offloaded_per_busy.values()))

    @property
    def total_failed(self) -> float:
        return float(sum(self.failed_per_busy.values()))

    @property
    def total_required(self) -> float:
        return self.total_offloaded + self.total_failed

    @property
    def hfr_pct(self) -> float:
        """Eq. 4; 0 when there was nothing to offload."""
        required = self.total_required
        if required <= _TOL:
            return 0.0
        return 100.0 * self.total_failed / required

    @property
    def fully_offloaded(self) -> bool:
        return self.total_failed <= _TOL

    @property
    def nothing_offloaded(self) -> bool:
        return self.total_offloaded <= _TOL and self.total_failed > _TOL


def solve_heuristic(
    problem: PlacementProblem,
    hop_radius: int = 1,
    convention: BandwidthConvention = BandwidthConvention.AVAILABLE,
    trmin_engine: Optional[TrminEngine] = None,
) -> HeuristicReport:
    """Run Algorithm 1 (generalized to ``hop_radius``) on ``problem``.

    The problem's ``max_hops`` is ignored: the heuristic's whole point
    is the fixed small radius. When a ``trmin_engine`` is supplied and
    the radius exceeds 1, lane pricing goes through its (parallel,
    version-cached) matrix instead of one DP per busy node; radius-1
    keeps the direct-edge fast path either way.
    """
    if hop_radius < 1:
        raise PlacementError(f"hop_radius must be >= 1, got {hop_radius}")
    start = time.perf_counter()
    topology = problem.topology
    candidate_index = {node: b for b, node in enumerate(problem.candidates)}
    remaining_cd = problem.cd.copy()

    model = ResponseTimeModel(
        convention=convention, engine=PathEngine.DP, max_hops=hop_radius
    )
    weights = model.edge_weights(topology)

    engine_rows = None
    if hop_radius > 1 and trmin_engine is not None and problem.busy:
        engine_rows = trmin_engine.resistance_matrix(
            topology,
            list(problem.busy),
            list(problem.candidates),
            with_paths=True,
            model=model,
        )

    assignments: List[PlacementAssignment] = []
    offloaded: Dict[int, float] = {}
    failed: Dict[int, float] = {}

    for a, busy in enumerate(problem.busy):
        need = float(problem.cs[a])
        offloaded[busy] = 0.0
        failed[busy] = 0.0
        if need <= _TOL:
            continue
        # Candidate lanes within the radius, priced per Eq. 1.
        lanes: List[Tuple[float, int, int, object]] = []  # (cost, hops, cand, path)
        if hop_radius == 1:
            for nbr, edge_id in topology.incident(busy):
                b = candidate_index.get(nbr)
                if b is None or remaining_cd[b] <= _TOL:
                    continue
                cost = float(problem.data_mb[a] * weights[edge_id])
                from repro.routing.routes import Path

                path = Path(nodes=(busy, nbr), edges=(edge_id,))
                lanes.append((cost, 1, b, path))
        elif engine_rows is not None:
            R, row_hops, route_paths = engine_rows
            for node, b in candidate_index.items():
                if node == busy or remaining_cd[b] <= _TOL:
                    continue
                if not np.isfinite(R[a, b]):
                    continue
                cost = float(problem.data_mb[a] * R[a, b])
                lanes.append(
                    (cost, int(row_hops[a, b]), b, route_paths.get((busy, node)))
                )
        else:
            from repro.routing.shortest import hop_constrained_shortest

            result = hop_constrained_shortest(topology, busy, hop_radius, weights)
            best = result.best
            for node, b in candidate_index.items():
                if node == busy or remaining_cd[b] <= _TOL:
                    continue
                if not np.isfinite(best[node]):
                    continue
                path = result.path_to(node)
                cost = float(problem.data_mb[a] * best[node])
                lanes.append((cost, path.num_hops if path else hop_radius, b, path))

        # Cheapest-first fill (optimal for a single supply).
        lanes.sort(key=lambda lane: (lane[0], lane[1]))
        for cost, hops, b, path in lanes:
            if need <= _TOL:
                break
            take = min(need, float(remaining_cd[b]))
            if take <= _TOL:
                continue
            remaining_cd[b] -= take
            need -= take
            offloaded[busy] += take
            assignments.append(
                PlacementAssignment(
                    busy=busy,
                    candidate=problem.candidates[b],
                    amount_pct=take,
                    response_time_s=cost,
                    hops=hops,
                    route=path,
                )
            )
        failed[busy] = max(0.0, need)

    return HeuristicReport(
        assignments=tuple(assignments),
        offloaded_per_busy=offloaded,
        failed_per_busy=failed,
        total_seconds=time.perf_counter() - start,
        hop_radius=hop_radius,
    )
