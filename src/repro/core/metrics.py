"""Evaluation metrics: HFR, io-rate, Fig. 9 success categories.

These are the quantities the paper's evaluation section reports:

* **HFR** (Eq. 4) — fraction of required offload the one-hop heuristic
  could not place;
* **Infeasible Optimization (io) rate** (Fig. 7) — fraction of random
  network states whose Eq. 3 program is infeasible;
* **success categories** (Fig. 9) — per-iteration comparison of the
  heuristic against the ILP: *full* (heuristic placed everything),
  *zero* (heuristic placed nothing while the ILP succeeded), *partial*
  (the rest).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Union

import numpy as np

from repro.core.heuristic import HeuristicReport
from repro.core.placement import PlacementReport
from repro.lp.result import SolveStatus

_TOL = 1e-9


def hfr_pct(failed: Sequence[float], required: Sequence[float]) -> float:
    """Eq. 4 from raw per-busy-node amounts (0 when nothing required)."""
    req = float(np.sum(np.asarray(required, dtype=float)))
    if req <= _TOL:
        return 0.0
    fail = float(np.sum(np.asarray(failed, dtype=float)))
    return 100.0 * fail / req


def infeasible_rate_pct(statuses: Iterable[SolveStatus]) -> float:
    """Share of solves that ended INFEASIBLE, in percent."""
    statuses = list(statuses)
    if not statuses:
        return 0.0
    infeasible = sum(1 for s in statuses if s is SolveStatus.INFEASIBLE)
    return 100.0 * infeasible / len(statuses)


class SuccessCategory(enum.Enum):
    """Fig. 9 taxonomy for one iteration."""

    HEURISTIC_FULL = "heuristic-full"  # heuristic offloaded all overload
    HEURISTIC_ZERO = "heuristic-zero"  # heuristic placed nothing, ILP succeeded
    PARTIAL = "partial"  # heuristic placed some, ILP finished the rest
    BOTH_INFEASIBLE = "both-infeasible"  # not plotted by the paper; tracked anyway
    NO_OVERLOAD = "no-overload"  # degenerate iteration without busy nodes


def categorize_iteration(
    heuristic: HeuristicReport, ilp: PlacementReport
) -> SuccessCategory:
    """Classify one random network state per Fig. 9's buckets."""
    if heuristic.total_required <= _TOL:
        return SuccessCategory.NO_OVERLOAD
    if heuristic.fully_offloaded:
        return SuccessCategory.HEURISTIC_FULL
    if not ilp.feasible:
        return SuccessCategory.BOTH_INFEASIBLE
    if heuristic.nothing_offloaded:
        return SuccessCategory.HEURISTIC_ZERO
    return SuccessCategory.PARTIAL


@dataclass(frozen=True)
class SuccessRateSummary:
    """Aggregated Fig. 9 percentages over many iterations."""

    counts: Dict[SuccessCategory, int]

    @property
    def total_considered(self) -> int:
        """Iterations with real overload and a feasible comparison."""
        return sum(
            self.counts.get(cat, 0)
            for cat in (
                SuccessCategory.HEURISTIC_FULL,
                SuccessCategory.HEURISTIC_ZERO,
                SuccessCategory.PARTIAL,
            )
        )

    def pct(self, category: SuccessCategory) -> float:
        total = self.total_considered
        if total == 0:
            return 0.0
        return 100.0 * self.counts.get(category, 0) / total


def summarize_categories(categories: Iterable[SuccessCategory]) -> SuccessRateSummary:
    counts: Dict[SuccessCategory, int] = {}
    for cat in categories:
        counts[cat] = counts.get(cat, 0) + 1
    return SuccessRateSummary(counts=counts)


def mean_hops(report: PlacementReport) -> float:
    """Load-weighted mean hop count of a placement (the paper's
    "number of hops required to reach the destination" metric)."""
    if not report.assignments:
        return float("nan")
    amounts = np.array([a.amount_pct for a in report.assignments])
    hops = np.array([a.hops for a in report.assignments], dtype=float)
    total = amounts.sum()
    if total <= _TOL:
        return float("nan")
    return float((amounts * hops).sum() / total)


# -- resilience metrics (chaos harness) --------------------------------------------
#
# A placement "signature" is the canonical, order-free description of
# who hosts what: sorted (source, destination, rounded amount) triples.
# Two runs converged to the same placement iff their signatures match.

AssignmentSignature = tuple


def assignment_signature(
    offloads: Iterable, *, amount_decimals: int = 6
) -> AssignmentSignature:
    """Canonical signature of a set of active offloads.

    Accepts anything with ``source`` / ``destination`` / ``amount_pct``
    attributes (e.g. :class:`~repro.core.offload.ActiveOffload`);
    amounts for the same (source, destination) pair are summed so a
    ledger holding one 10% row and a ledger holding two 5% rows for the
    same pair compare equal.
    """
    totals: Dict[tuple, float] = {}
    for o in offloads:
        key = (int(o.source), int(o.destination))
        totals[key] = totals.get(key, 0.0) + float(o.amount_pct)
    return tuple(
        (src, dst, round(amount, amount_decimals))
        for (src, dst), amount in sorted(totals.items())
    )


def merge_signatures(
    signatures: Iterable[AssignmentSignature], *, amount_decimals: int = 6
) -> AssignmentSignature:
    """Merge per-zone partial assignment signatures into a global one.

    Amounts for the same (source, destination) pair are summed across
    the partial views, so zone managers that each report only their own
    rows compose into exactly the signature a single manager holding
    the whole ledger would produce.
    """
    totals: Dict[tuple, float] = {}
    for signature in signatures:
        for src, dst, amount in signature:
            key = (int(src), int(dst))
            totals[key] = totals.get(key, 0.0) + float(amount)
    return tuple(
        (src, dst, round(amount, amount_decimals))
        for (src, dst), amount in sorted(totals.items())
    )


def _as_signature(view) -> AssignmentSignature:
    view = tuple(view)
    if not view:
        return ()
    first = view[0]
    if len(first) == 3 and not isinstance(first[0], (tuple, list)):
        return view  # already a single (source, dest, amount) signature
    return merge_signatures(view)


def placement_divergence(
    reference: AssignmentSignature, observed: AssignmentSignature
) -> float:
    """Fraction of offloaded load placed differently from the reference.

    Computed as the symmetric difference of per-(source, destination)
    amounts, normalised by the total reference amount — 0.0 means the
    observed placement is exactly the reference, 1.0 means none of the
    reference load sits where the reference put it (extra, misplaced
    load can push the value above 1). With an empty reference, any
    observed load counts as full divergence.

    Either side may be one signature or an iterable of per-zone partial
    signatures (merged with :func:`merge_signatures` first), so
    distributed and single-manager runs score identically.
    """
    ref = {(s, d): a for s, d, a in _as_signature(reference)}
    obs = {(s, d): a for s, d, a in _as_signature(observed)}
    total_ref = sum(ref.values())
    mismatch = sum(
        abs(ref.get(key, 0.0) - obs.get(key, 0.0)) for key in set(ref) | set(obs)
    )
    if total_ref <= _TOL:
        return 0.0 if mismatch <= _TOL else 1.0
    return mismatch / total_ref


def recovery_time_s(
    checkpoints: Sequence, reference: AssignmentSignature, disruption_time: float
) -> Optional[float]:
    """Time from a disruption until the placement re-converged for good.

    ``checkpoints`` is a time-ordered sequence of ``(time, signature)``
    pairs sampled during the run. Recovery is the earliest checkpoint at
    or after ``disruption_time`` whose signature — and every later
    checkpoint's — matches the reference (a transient match that
    diverges again does not count). Returns ``None`` when the run never
    re-converged.
    """
    recovered_at: Optional[float] = None
    for when, signature in checkpoints:
        if when < disruption_time:
            continue
        if signature == reference:
            if recovered_at is None:
                recovered_at = when
        else:
            recovered_at = None
    if recovered_at is None:
        return None
    return max(0.0, recovered_at - disruption_time)


def relief_by_source(offloads: Iterable) -> Dict[int, float]:
    """Total offloaded amount per *source* node (destination-agnostic).

    The soak drift watchdog compares the live incremental placement
    against a from-scratch oracle solve. The two may legitimately pick
    different destinations among capacity-equivalent helpers, so the
    meaningful drift signal is *how much relief each overloaded source
    receives*, not which exact edge carries it.
    """
    totals: Dict[int, float] = {}
    for o in offloads:
        src = int(o.source)
        totals[src] = totals.get(src, 0.0) + float(o.amount_pct)
    return totals


ReliefView = Union[Mapping[int, float], Iterable[Mapping[int, float]]]


def merge_partial_relief(views: Iterable[Mapping[int, float]]) -> Dict[int, float]:
    """Combine per-zone partial relief views into one global view.

    A distributed solve reports relief zone by zone; a source whose
    offloads land in several zones (or whose zone re-splits mid-run)
    appears in more than one partial view. Amounts for the same source
    are therefore *summed*, never overwritten — merging the per-zone
    views of one placement always reproduces the single-manager view
    of the same placement.
    """
    totals: Dict[int, float] = {}
    for view in views:
        for src, amount in view.items():
            key = int(src)
            totals[key] = totals.get(key, 0.0) + float(amount)
    return totals


def _as_relief_view(view: ReliefView) -> Mapping[int, float]:
    if isinstance(view, Mapping):
        return view
    return merge_partial_relief(view)


def relief_divergence(reference: ReliefView, observed: ReliefView) -> float:
    """Fraction of reference relief mis-delivered, per source.

    Symmetric difference of per-source relief amounts normalised by the
    total reference relief: 0.0 when every source gets exactly the
    relief the oracle would grant it, 1.0 when none does. An empty
    reference (oracle sees no overload) scores 0 only if the observed
    placement is also empty.

    Either side may be a single ``{source: amount}`` mapping (one
    manager's view) **or** an iterable of per-zone partial mappings —
    partial views are merged with :func:`merge_partial_relief` first,
    so the drift watchdog and a distributed solve score identically
    regardless of how the view was sliced.
    """
    ref = _as_relief_view(reference)
    obs = _as_relief_view(observed)
    total_ref = sum(ref.values())
    mismatch = sum(
        abs(ref.get(k, 0.0) - obs.get(k, 0.0))
        for k in set(ref) | set(obs)
    )
    if total_ref <= _TOL:
        return 0.0 if mismatch <= _TOL else 1.0
    return mismatch / total_ref


def message_overhead_pct(faulty_sent: int, baseline_sent: int) -> float:
    """Extra control messages a lossy run cost, relative to the
    fault-free baseline (0 when the baseline sent nothing)."""
    if baseline_sent <= 0:
        return 0.0
    return 100.0 * (faulty_sent - baseline_sent) / baseline_sent


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> float:
    """Least-squares exponent of ``y ~ x^a`` (log–log regression).

    Used to check Fig. 11a's claim that HFR falls with network size
    roughly as a power law with exponent ≈ −0.5.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size or xa.size < 2:
        raise ValueError("need at least two (x, y) points with matching shapes")
    if (xa <= 0).any() or (ya <= 0).any():
        raise ValueError("power-law fit requires strictly positive data")
    slope, _ = np.polyfit(np.log(xa), np.log(ya), 1)
    return float(slope)
