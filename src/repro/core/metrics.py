"""Evaluation metrics: HFR, io-rate, Fig. 9 success categories.

These are the quantities the paper's evaluation section reports:

* **HFR** (Eq. 4) — fraction of required offload the one-hop heuristic
  could not place;
* **Infeasible Optimization (io) rate** (Fig. 7) — fraction of random
  network states whose Eq. 3 program is infeasible;
* **success categories** (Fig. 9) — per-iteration comparison of the
  heuristic against the ILP: *full* (heuristic placed everything),
  *zero* (heuristic placed nothing while the ILP succeeded), *partial*
  (the rest).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence

import numpy as np

from repro.core.heuristic import HeuristicReport
from repro.core.placement import PlacementReport
from repro.lp.result import SolveStatus

_TOL = 1e-9


def hfr_pct(failed: Sequence[float], required: Sequence[float]) -> float:
    """Eq. 4 from raw per-busy-node amounts (0 when nothing required)."""
    req = float(np.sum(np.asarray(required, dtype=float)))
    if req <= _TOL:
        return 0.0
    fail = float(np.sum(np.asarray(failed, dtype=float)))
    return 100.0 * fail / req


def infeasible_rate_pct(statuses: Iterable[SolveStatus]) -> float:
    """Share of solves that ended INFEASIBLE, in percent."""
    statuses = list(statuses)
    if not statuses:
        return 0.0
    infeasible = sum(1 for s in statuses if s is SolveStatus.INFEASIBLE)
    return 100.0 * infeasible / len(statuses)


class SuccessCategory(enum.Enum):
    """Fig. 9 taxonomy for one iteration."""

    HEURISTIC_FULL = "heuristic-full"  # heuristic offloaded all overload
    HEURISTIC_ZERO = "heuristic-zero"  # heuristic placed nothing, ILP succeeded
    PARTIAL = "partial"  # heuristic placed some, ILP finished the rest
    BOTH_INFEASIBLE = "both-infeasible"  # not plotted by the paper; tracked anyway
    NO_OVERLOAD = "no-overload"  # degenerate iteration without busy nodes


def categorize_iteration(
    heuristic: HeuristicReport, ilp: PlacementReport
) -> SuccessCategory:
    """Classify one random network state per Fig. 9's buckets."""
    if heuristic.total_required <= _TOL:
        return SuccessCategory.NO_OVERLOAD
    if heuristic.fully_offloaded:
        return SuccessCategory.HEURISTIC_FULL
    if not ilp.feasible:
        return SuccessCategory.BOTH_INFEASIBLE
    if heuristic.nothing_offloaded:
        return SuccessCategory.HEURISTIC_ZERO
    return SuccessCategory.PARTIAL


@dataclass(frozen=True)
class SuccessRateSummary:
    """Aggregated Fig. 9 percentages over many iterations."""

    counts: Dict[SuccessCategory, int]

    @property
    def total_considered(self) -> int:
        """Iterations with real overload and a feasible comparison."""
        return sum(
            self.counts.get(cat, 0)
            for cat in (
                SuccessCategory.HEURISTIC_FULL,
                SuccessCategory.HEURISTIC_ZERO,
                SuccessCategory.PARTIAL,
            )
        )

    def pct(self, category: SuccessCategory) -> float:
        total = self.total_considered
        if total == 0:
            return 0.0
        return 100.0 * self.counts.get(category, 0) / total


def summarize_categories(categories: Iterable[SuccessCategory]) -> SuccessRateSummary:
    counts: Dict[SuccessCategory, int] = {}
    for cat in categories:
        counts[cat] = counts.get(cat, 0) + 1
    return SuccessRateSummary(counts=counts)


def mean_hops(report: PlacementReport) -> float:
    """Load-weighted mean hop count of a placement (the paper's
    "number of hops required to reach the destination" metric)."""
    if not report.assignments:
        return float("nan")
    amounts = np.array([a.amount_pct for a in report.assignments])
    hops = np.array([a.hops for a in report.assignments], dtype=float)
    total = amounts.sum()
    if total <= _TOL:
        return float("nan")
    return float((amounts * hops).sum() / total)


def fit_power_law(x: Sequence[float], y: Sequence[float]) -> float:
    """Least-squares exponent of ``y ~ x^a`` (log–log regression).

    Used to check Fig. 11a's claim that HFR falls with network size
    roughly as a power law with exponent ≈ −0.5.
    """
    xa = np.asarray(x, dtype=float)
    ya = np.asarray(y, dtype=float)
    if xa.size != ya.size or xa.size < 2:
        raise ValueError("need at least two (x, y) points with matching shapes")
    if (xa <= 0).any() or (ya <= 0).any():
        raise ValueError("power-law fit requires strictly positive data")
    slope, _ = np.polyfit(np.log(xa), np.log(ya), 1)
    return float(slope)
