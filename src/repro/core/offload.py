"""Offload plans and the manager's active-offload ledger.

A :class:`PlacementReport` (or heuristic report) describes *what should
move*; :class:`OffloadPlan` turns it into capacity deltas under the
paper's homogeneity assumption (one percentage point released at the
source costs one point at the destination), and :class:`OffloadLedger`
tracks the live state so reclaim and replica substitution operate on
ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import PlacementAssignment
from repro.errors import PlacementError

_TOL = 1e-9


@dataclass(frozen=True)
class OffloadPlan:
    """A set of accepted assignments ready to apply."""

    assignments: Tuple[PlacementAssignment, ...]

    @property
    def total_amount(self) -> float:
        return float(sum(a.amount_pct for a in self.assignments))

    @property
    def sources(self) -> List[int]:
        return sorted({a.busy for a in self.assignments})

    @property
    def destinations(self) -> List[int]:
        return sorted({a.candidate for a in self.assignments})

    def apply_to_capacities(self, capacities: Sequence[float]) -> np.ndarray:
        """Post-offload utilized capacities: sources drop by their
        offloaded amount, destinations rise (homogeneity assumption)."""
        caps = np.asarray(capacities, dtype=float).copy()
        for a in self.assignments:
            caps[a.busy] -= a.amount_pct
            caps[a.candidate] += a.amount_pct
        return caps

    def rollback_from_capacities(self, capacities: Sequence[float]) -> np.ndarray:
        """Inverse of :meth:`apply_to_capacities`."""
        caps = np.asarray(capacities, dtype=float).copy()
        for a in self.assignments:
            caps[a.busy] += a.amount_pct
            caps[a.candidate] -= a.amount_pct
        return caps

    def validate_against(
        self,
        capacities: Sequence[float],
        c_max: float,
        co_max: float,
    ) -> None:
        """Check the plan respects the paper's constraints for the given
        pre-offload state: no destination exceeds ``CO_max`` afterwards
        (3a/3d) and no source offloads more than its excess (3c)."""
        caps = np.asarray(capacities, dtype=float)
        by_source: Dict[int, float] = {}
        by_dest: Dict[int, float] = {}
        for a in self.assignments:
            by_source[a.busy] = by_source.get(a.busy, 0.0) + a.amount_pct
            by_dest[a.candidate] = by_dest.get(a.candidate, 0.0) + a.amount_pct
        for src, amount in by_source.items():
            excess = caps[src] - c_max
            if amount > excess + 1e-6:
                raise PlacementError(
                    f"source {src} offloads {amount:.3f} > its excess {excess:.3f}"
                )
        for dst, amount in by_dest.items():
            if caps[dst] + amount > co_max + 1e-6:
                raise PlacementError(
                    f"destination {dst} would reach {caps[dst] + amount:.3f}% "
                    f"> CO_max {co_max}%"
                )


@dataclass
class ActiveOffload:
    """One live (source → destination) offload tracked by the manager."""

    source: int
    destination: int
    amount_pct: float
    route: Tuple[int, ...]
    established_at: float
    via_replica: bool = False


class OffloadLedger:
    """Manager-side registry of active offloads."""

    def __init__(self) -> None:
        self._active: List[ActiveOffload] = []

    def add(self, offload: ActiveOffload) -> None:
        if offload.amount_pct <= _TOL:
            raise PlacementError("refusing to track a zero-amount offload")
        self._active.append(offload)

    # -- queries ----------------------------------------------------------------
    @property
    def active(self) -> Tuple[ActiveOffload, ...]:
        return tuple(self._active)

    def hosted_by(self, destination: int) -> List[ActiveOffload]:
        """Offloads currently hosted on ``destination``."""
        return [o for o in self._active if o.destination == destination]

    def offloaded_from(self, source: int) -> List[ActiveOffload]:
        """Offloads whose workload originates at ``source``."""
        return [o for o in self._active if o.source == source]

    def hosted_amount(self, destination: int) -> float:
        return float(sum(o.amount_pct for o in self.hosted_by(destination)))

    def offloaded_amount(self, source: int) -> float:
        return float(sum(o.amount_pct for o in self.offloaded_from(source)))

    def pair_amount(self, source: int, destination: int) -> float:
        """Total booked amount for one ``source -> destination`` pair."""
        return float(
            sum(
                o.amount_pct
                for o in self._active
                if o.source == source and o.destination == destination
            )
        )

    @property
    def destinations(self) -> List[int]:
        return sorted({o.destination for o in self._active})

    @property
    def sources(self) -> List[int]:
        return sorted({o.source for o in self._active})

    # -- mutations ----------------------------------------------------------------
    def reclaim(self, source: int) -> List[ActiveOffload]:
        """Remove (and return) all offloads originating at ``source``."""
        reclaimed = self.offloaded_from(source)
        self._active = [o for o in self._active if o.source != source]
        return reclaimed

    def evict_destination(self, destination: int) -> List[ActiveOffload]:
        """Remove (and return) all offloads hosted on ``destination`` —
        the first half of replica substitution."""
        evicted = self.hosted_by(destination)
        self._active = [o for o in self._active if o.destination != destination]
        return evicted

    def __len__(self) -> int:
        return len(self._active)
