"""Manager failover: snapshots, stable storage, and a standby manager.

The DUST-Manager is the single coordination point of a deployment, so
its crash would otherwise orphan every active offload. The failover
design here is deliberately simple (one primary, one standby, shared
stable storage) but exercises the full recovery path the paper's
control plane needs:

* the primary persists a :class:`ManagerSnapshot` (NMDB records +
  offload ledger + keepalive watch set) into a :class:`SnapshotStore`
  on every state update and heartbeats the standby;
* the :class:`StandbyManager` watches those heartbeats. After
  ``takeover_silence_s`` of silence it spins up a fresh
  :class:`~repro.core.manager.DUSTManager` **under the primary's node
  id** (VIP-style takeover — clients keep sending to the address they
  know), restores the latest snapshot, and opens a resync window;
* during resync, clients answer the broadcast Resync with a fresh STAT
  plus one Offload-ACK per workload they actually host, letting the new
  manager rebuild any ledger rows the snapshot missed and converge back
  to the pre-crash assignments.

Split-brain guard: if the primary is in fact still registered on the
network (a false alarm — e.g. heartbeats were dropped, not the
manager), the VIP registration fails and the standby backs off instead
of double-driving the control plane.
"""

from __future__ import annotations

import os
import pickle
import struct
import zlib
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

from repro.core.messages import ControlMessage, ManagerHeartbeat
from repro.core.nmdb import NodeRecord
from repro.core.offload import ActiveOffload
from repro.core.thresholds import ThresholdPolicy
from repro.errors import SimulationError
from repro.obs import get_registry, trace_event
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import Message, MessageNetwork
from repro.topology.graph import Topology


@dataclass(frozen=True)
class ManagerSnapshot:
    """One persisted manager state, written on every update."""

    version: int
    timestamp: float
    records: Dict[int, NodeRecord]
    ledger_rows: Tuple[ActiveOffload, ...]
    keepalive_watch: Dict[int, float]
    #: Sources whose Redirect Receipt was still outstanding at persist
    #: time; a promoted manager must not trust their ledger rows.
    unconfirmed_sources: Tuple[int, ...] = ()


#: Magic + format version framing the on-disk snapshot record.
_SNAPSHOT_MAGIC = b"DUSTSNAP"
_SNAPSHOT_HEADER = struct.Struct("<8sIQ")  # magic, crc32, payload length


class SnapshotStore:
    """Stable storage for manager snapshots (latest-wins).

    In-simulation stand-in for a replicated store: survives the
    manager's crash because it lives outside the manager object. With
    ``path`` set it additionally persists each accepted snapshot to
    disk, surviving a full *process* crash — the standby's takeover
    path reloads it through :meth:`load` after a restart.

    The on-disk write is crash-safe: the framed record (magic + CRC32 +
    length + pickle payload) is written to a sibling temp file, fsynced
    and atomically renamed over the target, so a crash mid-write leaves
    the previous good snapshot intact. A torn or corrupted file (bad
    magic, short read, CRC mismatch) is detected on load and treated as
    absent rather than poisoning the takeover (counted in
    ``failover.snapshot_load_failures``).
    """

    def __init__(self, path: Optional[Union[str, Path]] = None) -> None:
        self._latest: Optional[ManagerSnapshot] = None
        self.path = Path(path) if path is not None else None
        self.saves = 0
        self.load_failures = 0
        self._disk_checked = False

    def save(self, snapshot: ManagerSnapshot) -> None:
        if self._latest is not None and snapshot.version < self._latest.version:
            return  # never let an out-of-date writer regress the store
        self._latest = snapshot
        self.saves += 1
        get_registry().counter("failover.snapshot_saves").inc()
        if self.path is not None:
            self.persist(snapshot)

    def persist(self, snapshot: ManagerSnapshot) -> None:
        """Write ``snapshot`` to :attr:`path` via temp file + fsync +
        atomic rename (no-op without a path)."""
        if self.path is None:
            return
        payload = pickle.dumps(snapshot, protocol=pickle.HIGHEST_PROTOCOL)
        header = _SNAPSHOT_HEADER.pack(
            _SNAPSHOT_MAGIC, zlib.crc32(payload) & 0xFFFFFFFF, len(payload)
        )
        tmp = self.path.with_name(self.path.name + ".tmp")
        with open(tmp, "wb") as fh:
            fh.write(header)
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self.path)

    def _load_from_disk(self) -> Optional[ManagerSnapshot]:
        if self.path is None or not self.path.exists():
            return None
        try:
            raw = self.path.read_bytes()
            magic, crc, length = _SNAPSHOT_HEADER.unpack_from(raw)
            if magic != _SNAPSHOT_MAGIC:
                raise ValueError("bad snapshot magic")
            payload = raw[_SNAPSHOT_HEADER.size : _SNAPSHOT_HEADER.size + length]
            if len(payload) != length or (zlib.crc32(payload) & 0xFFFFFFFF) != crc:
                raise ValueError("torn snapshot write (length/CRC mismatch)")
            snapshot = pickle.loads(payload)
            if not isinstance(snapshot, ManagerSnapshot):
                raise ValueError(f"snapshot file holds {type(snapshot).__name__}")
            return snapshot
        except Exception:
            self.load_failures += 1
            get_registry().counter("failover.snapshot_load_failures").inc()
            return None

    def load(self) -> Optional[ManagerSnapshot]:
        if self._latest is None and not self._disk_checked:
            self._disk_checked = True  # one verdict per file, not per call
            self._latest = self._load_from_disk()
        return self._latest

    @property
    def version(self) -> int:
        latest = self.load()
        return -1 if latest is None else latest.version


class StandbyManager:
    """Hot standby: watches primary heartbeats, takes over on silence.

    Parameters
    ----------
    node_id : int
        Node the standby runs on (must differ from ``primary_node``).
    topology, engine, network, policy :
        Same collaborators a :class:`~repro.core.manager.DUSTManager`
        takes; the promoted manager is built from them.
    snapshot_store : SnapshotStore
        Stable store the primary persists into; the promoted manager
        restores the latest snapshot from it.
    primary_node : int
        Node id (and network address) of the watched primary.
    takeover_silence_s : float, optional
        Heartbeat silence that triggers a takeover attempt.
    check_period_s : float, optional
        Watchdog tick period.
    manager_kwargs : dict, optional
        Extra ``DUSTManager`` constructor options for the promoted
        instance (retry policy, periods, …), mirroring the primary.

    Attributes
    ----------
    heartbeats_seen : int
        Primary heartbeats observed (metric:
        ``failover.heartbeats_seen``).
    takeover_aborts : int
        Takeovers aborted by the split-brain guard (metric:
        ``failover.takeover_aborts``).
    took_over_at : float or None
        Simulation time of the successful promotion, if any
        (counted in ``failover.takeovers``).
    """

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        engine: SimulationEngine,
        network: MessageNetwork,
        policy: ThresholdPolicy,
        snapshot_store: SnapshotStore,
        primary_node: int,
        takeover_silence_s: float = 30.0,
        check_period_s: float = 5.0,
        manager_kwargs: Optional[dict] = None,
    ) -> None:
        if node_id == primary_node:
            raise SimulationError("standby must run on a different node than the primary")
        self.node_id = node_id
        self.topology = topology
        self.engine = engine
        self.network = network
        self.policy = policy
        self.snapshot_store = snapshot_store
        self.primary_node = primary_node
        self.takeover_silence_s = takeover_silence_s
        self.check_period_s = check_period_s
        #: Extra DUSTManager ctor options for the promoted instance
        #: (retry_policy, periods, ...), mirroring the primary's config.
        self.manager_kwargs = dict(manager_kwargs or {})
        self.manager = None  # the promoted DUSTManager after takeover
        self.took_over_at: Optional[float] = None
        self.heartbeats_seen = 0
        self.takeover_aborts = 0
        self._last_heartbeat = float("-inf")
        self._started = False

    # -- lifecycle --------------------------------------------------------------
    def start(self) -> None:
        if self._started:
            raise SimulationError("standby already started")
        self._started = True
        self._last_heartbeat = self.engine.now  # grace period from start
        self.network.register(self.node_id, self._receive)
        self.engine.schedule_periodic(
            self.check_period_s,
            lambda engine: self.check(),
            label="standby-watchdog",
            condition=lambda: self.manager is None,
        )

    @property
    def promoted(self) -> bool:
        return self.manager is not None

    def _receive(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, ManagerHeartbeat):
            self.heartbeats_seen += 1
            get_registry().counter("failover.heartbeats_seen").inc()
            self._last_heartbeat = max(self._last_heartbeat, self.engine.now)
        elif not isinstance(payload, ControlMessage):
            raise SimulationError("standby received non-DUST payload")
        # Any other control message is tolerated silently: a lossy
        # fabric can deliver duplicates long after a failed takeover.

    # -- watchdog ---------------------------------------------------------------
    def check(self) -> bool:
        """One watchdog tick; returns True if a takeover happened."""
        if self.manager is not None:
            return False
        if self.engine.now - self._last_heartbeat <= self.takeover_silence_s:
            return False
        return self.takeover()

    def takeover(self) -> bool:
        """Promote: register under the primary's id, restore, resync."""
        from repro.core.manager import DUSTManager

        manager = DUSTManager(
            node_id=self.primary_node,
            topology=self.topology,
            engine=self.engine,
            network=self.network,
            policy=self.policy,
            snapshot_store=self.snapshot_store,
            **self.manager_kwargs,
        )
        try:
            manager.start()
        except SimulationError:
            # Primary still holds the VIP — heartbeat loss, not a crash.
            self.takeover_aborts += 1
            get_registry().counter("failover.takeover_aborts").inc()
            self._last_heartbeat = self.engine.now  # back off a full window
            return False
        snapshot = self.snapshot_store.load()
        if snapshot is not None:
            manager.restore_snapshot(snapshot)
        manager.begin_resync()
        self.manager = manager
        self.took_over_at = self.engine.now
        get_registry().counter("failover.takeovers").inc()
        trace_event(
            "failover.takeover", standby=self.node_id, primary=self.primary_node
        )
        return True
