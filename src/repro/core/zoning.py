"""Network zoning — the paper's scaling recommendation, implemented.

The conclusion of the evaluation section: *"we suggest dividing
large-scale networks into zones containing a maximum of 80 nodes. This
approach has an acceptable optimization cost of 0.8 seconds for a
max-hop value of 7"*. This module implements that zoned deployment:

* :func:`partition_by_pod` — natural fat-tree zoning (a pod plus a
  share of the core layer);
* :func:`partition_bfs` — topology-agnostic balanced BFS zoning with a
  node budget, for fabrics without pod structure;
* :class:`ZonedPlacementEngine` — runs an independent Eq. 3 placement
  *inside each zone* and reports the per-zone and aggregate outcome,
  including the load that could not be placed inside its own zone
  (the zoning analogue of the heuristic's HFR).

Zoning trades optimality (no inter-zone offloading) for per-zone solve
times that stay within the paper's sub-second budget; the ablation
bench ``benchmarks/bench_ablation_zoning.py`` quantifies the trade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import (
    PlacementAssignment,
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
    PlacementSession,
)
from repro.errors import PlacementError, TopologyError
from repro.lp.distributed import DistributedSolveResult, ZoneWorker, run_protocol
from repro.parallel import map_with_pool_retry, resolve_workers
from repro.topology.graph import NodeKind, Topology

_TOL = 1e-9


def _solve_zone(payload: Tuple[PlacementEngine, PlacementProblem]) -> PlacementReport:
    """Pool task: one zone's Eq. 3 solve (module-level so it pickles)."""
    engine, problem = payload
    return engine.solve(problem)


@dataclass(frozen=True)
class Zone:
    """One zone: a node subset treated as an independent DUST domain."""

    zone_id: int
    nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise PlacementError(f"zone {self.zone_id} is empty")
        if len(set(self.nodes)) != len(self.nodes):
            raise PlacementError(f"zone {self.zone_id} repeats nodes")

    def __len__(self) -> int:
        return len(self.nodes)


def partition_by_pod(topology: Topology) -> List[Zone]:
    """Fat-tree zoning: one zone per pod, with the core switches
    round-robined across zones so every zone can relay through cores.

    Requires pod annotations (set by the fat-tree builder); raises on
    topologies without them.
    """
    pods: Dict[int, List[int]] = {}
    core: List[int] = []
    for node in topology.nodes:
        if node.pod is not None:
            pods.setdefault(node.pod, []).append(node.node_id)
        elif node.kind is NodeKind.CORE_SWITCH:
            core.append(node.node_id)
        else:
            raise TopologyError(
                f"node {node.node_id} has no pod annotation and is not a core "
                "switch; use partition_bfs for unstructured topologies"
            )
    if not pods:
        raise TopologyError("topology has no pod annotations")
    zones: List[Zone] = []
    pod_ids = sorted(pods)
    for idx, pod in enumerate(pod_ids):
        members = sorted(pods[pod])
        members += [c for j, c in enumerate(core) if j % len(pod_ids) == idx]
        zones.append(Zone(zone_id=idx, nodes=tuple(sorted(members))))
    return zones


def partition_bfs(topology: Topology, max_zone_nodes: int = 80) -> List[Zone]:
    """Balanced BFS zoning: grow zones from unvisited seeds until each
    holds at most ``max_zone_nodes`` nodes.

    Deterministic (seeds are lowest unvisited node ids) and total —
    every node lands in exactly one zone.
    """
    if max_zone_nodes < 1:
        raise PlacementError(f"max_zone_nodes must be >= 1, got {max_zone_nodes}")
    n = topology.num_nodes
    assigned = np.full(n, -1, dtype=int)
    zones: List[Zone] = []
    for seed in range(n):
        if assigned[seed] != -1:
            continue
        zone_id = len(zones)
        members: List[int] = []
        queue = [seed]
        assigned[seed] = zone_id
        while queue and len(members) < max_zone_nodes:
            node = queue.pop(0)
            members.append(node)
            for nbr in topology.neighbors(node):
                if assigned[nbr] == -1 and len(members) + len(queue) < max_zone_nodes:
                    assigned[nbr] = zone_id
                    queue.append(nbr)
        # Anything still queued beyond the budget returns to the pool.
        for node in queue:
            if node not in members:
                assigned[node] = -1
        zones.append(Zone(zone_id=zone_id, nodes=tuple(sorted(members))))
    return zones


def zone_boundaries(
    topology: Topology, zones: Sequence[Zone]
) -> Dict[int, Tuple[int, ...]]:
    """Boundary node sets: per zone, the members with an edge out.

    A node is on its zone's boundary when at least one topology
    neighbor belongs to a different zone — these are the nodes whose
    offload lanes the distributed solve's price exchange actually has
    to negotiate (interior lanes are settled by the zone's local
    presolve).

    Parameters
    ----------
    topology : Topology
        The fabric the zones partition.
    zones : sequence of Zone
        A valid partition (see :func:`validate_partition`).

    Returns
    -------
    dict of int to tuple of int
        ``zone_id -> sorted boundary node ids``.
    """
    owner: Dict[int, int] = {}
    for zone in zones:
        for node in zone.nodes:
            owner[node] = zone.zone_id
    boundaries: Dict[int, Tuple[int, ...]] = {}
    for zone in zones:
        edge_nodes = [
            node
            for node in zone.nodes
            if any(owner.get(nbr) != zone.zone_id for nbr in topology.neighbors(node))
        ]
        boundaries[zone.zone_id] = tuple(sorted(edge_nodes))
    return boundaries


def zone_relief_views(
    zones: Sequence[Zone], assignments: Sequence["PlacementAssignment"]
) -> List[Dict[int, float]]:
    """Split one placement's relief into per-zone partial views.

    Each view maps ``busy source -> relieved amount_pct`` for the
    sources owned by that zone. Merging the views with
    :func:`~repro.core.metrics.merge_partial_relief` reproduces the
    single-manager ``relief_by_source`` reading exactly, which is what
    lets the soak drift watchdog score a distributed placement with the
    same :func:`~repro.core.metrics.relief_divergence` it uses for a
    centralized one.

    Parameters
    ----------
    zones : sequence of Zone
        The zone partition the solve ran under.
    assignments : sequence of PlacementAssignment
        The placement's flows (e.g. ``report.assignments``).

    Returns
    -------
    list of dict of int to float
        One ``{source: amount}`` view per zone, in ``zones`` order.
        Sources outside every zone raise
        :class:`~repro.errors.PlacementError`.
    """
    owner: Dict[int, int] = {}
    for index, zone in enumerate(zones):
        for node in zone.nodes:
            owner[node] = index
    views: List[Dict[int, float]] = [{} for _ in zones]
    for assignment in assignments:
        source = int(assignment.busy)
        if source not in owner:
            raise PlacementError(f"assignment source {source} belongs to no zone")
        view = views[owner[source]]
        view[source] = view.get(source, 0.0) + float(assignment.amount_pct)
    return views


def validate_partition(topology: Topology, zones: Sequence[Zone]) -> None:
    """Every node in exactly one zone."""
    seen: Dict[int, int] = {}
    for zone in zones:
        for node in zone.nodes:
            topology.node(node)
            if node in seen:
                raise PlacementError(
                    f"node {node} appears in zones {seen[node]} and {zone.zone_id}"
                )
            seen[node] = zone.zone_id
    missing = set(range(topology.num_nodes)) - set(seen)
    if missing:
        raise PlacementError(f"nodes {sorted(missing)} belong to no zone")


@dataclass(frozen=True)
class ZonedPlacementReport:
    """Aggregate outcome of per-zone placement."""

    zone_reports: Tuple[Tuple[Zone, PlacementReport], ...]
    unplaced_per_zone: Dict[int, float]  # excess stuck in an infeasible zone
    total_seconds: float
    #: Algorithm-1 relief of infeasible zones (zone id -> HeuristicReport),
    #: populated when the engine runs with ``heuristic_relief=True``; the
    #: relieved amounts are already subtracted from ``unplaced_per_zone``.
    heuristic_relief_per_zone: Dict[int, object] = field(default_factory=dict)

    @property
    def total_offloaded(self) -> float:
        lp = float(
            sum(r.total_offloaded for _, r in self.zone_reports if r.feasible)
        )
        relief = float(
            sum(r.total_offloaded for r in self.heuristic_relief_per_zone.values())
        )
        return lp + relief

    @property
    def total_unplaced(self) -> float:
        return float(sum(self.unplaced_per_zone.values()))

    @property
    def total_excess(self) -> float:
        return float(sum(r.total_excess for _, r in self.zone_reports))

    @property
    def zone_failure_rate_pct(self) -> float:
        """Share of total excess stuck inside infeasible zones — the
        price of forbidding inter-zone offloading."""
        excess = self.total_excess
        if excess <= _TOL:
            return 0.0
        return 100.0 * self.total_unplaced / excess

    @property
    def objective_beta(self) -> float:
        """Sum of per-zone betas over feasible zones."""
        return float(
            sum(r.objective_beta for _, r in self.zone_reports if r.feasible)
        )

    @property
    def max_zone_seconds(self) -> float:
        """Slowest zone solve — the paper's per-zone latency budget; in
        a real deployment zones solve in parallel, so this is the
        effective wall-clock."""
        if not self.zone_reports:
            return 0.0
        return max(r.total_seconds for _, r in self.zone_reports)

    def assignments(self) -> List[PlacementAssignment]:
        out: List[PlacementAssignment] = []
        for _, report in self.zone_reports:
            out.extend(report.assignments)
        for relief in self.heuristic_relief_per_zone.values():
            out.extend(relief.assignments)
        return out


class ZonedPlacementEngine:
    """Per-zone Eq. 3 placement."""

    def __init__(
        self,
        engine: Optional[PlacementEngine] = None,
        max_hops: Optional[int] = 7,
        workers: Optional[int] = None,
        heuristic_relief: bool = False,
    ) -> None:
        self.engine = engine or PlacementEngine(with_routes=False, workers=workers)
        self.max_hops = max_hops
        self.workers = workers
        #: When True, an infeasible zone gets a second chance through
        #: the vectorized Algorithm-1 kernel: partial one-hop relief
        #: beats leaving the whole zone's excess stranded (the same
        #: policy DUSTManager applies on infeasible rounds).
        self.heuristic_relief = heuristic_relief

    def solve(
        self,
        topology: Topology,
        zones: Sequence[Zone],
        busy: Sequence[int],
        candidates: Sequence[int],
        cs: Sequence[float],
        cd: Sequence[float],
        data_mb: Sequence[float],
    ) -> ZonedPlacementReport:
        """Solve each zone independently; busy/candidate nodes outside
        their zone's membership never exchange load."""
        validate_partition(topology, zones)
        start = time.perf_counter()
        cs_of = dict(zip(busy, map(float, cs)))
        cd_of = dict(zip(candidates, map(float, cd)))
        data_of = dict(zip(busy, map(float, data_mb)))

        problems: List[PlacementProblem] = []
        for zone in zones:
            members = set(zone.nodes)
            zone_busy = tuple(b for b in busy if b in members)
            zone_cands = tuple(c for c in candidates if c in members)
            problems.append(
                PlacementProblem(
                    topology=topology,
                    busy=zone_busy,
                    candidates=zone_cands,
                    cs=np.array([cs_of[b] for b in zone_busy]),
                    cd=np.array([cd_of[c] for c in zone_cands]),
                    data_mb=np.array([data_of[b] for b in zone_busy]),
                    max_hops=self.max_hops,
                )
            )
        reports = self._solve_all(problems)

        zone_reports: List[Tuple[Zone, PlacementReport]] = []
        unplaced: Dict[int, float] = {}
        relief_reports: Dict[int, object] = {}
        for zone, problem, report in zip(zones, problems, reports):
            zone_reports.append((zone, report))
            if not report.feasible:
                stuck = float(problem.total_excess)
                if self.heuristic_relief and problem.busy and problem.candidates:
                    from repro.core.heuristic import solve_heuristic

                    relief = solve_heuristic(problem)
                    if relief.assignments:
                        relief_reports[zone.zone_id] = relief
                        stuck = max(0.0, stuck - relief.total_offloaded)
                unplaced[zone.zone_id] = stuck
        return ZonedPlacementReport(
            zone_reports=tuple(zone_reports),
            unplaced_per_zone=unplaced,
            total_seconds=time.perf_counter() - start,
            heuristic_relief_per_zone=relief_reports,
        )

    def _solve_all(self, problems: List[PlacementProblem]) -> List[PlacementReport]:
        """Solve zones serially or on the worker pool; order preserved.

        Zones are independent subproblems, so each zone's report is the
        same object-for-object result either way; any pool failure
        (restricted sandbox, unpicklable backend) degrades to serial.
        """
        workers = resolve_workers(self.workers, task_count=len(problems))
        if workers <= 1 or len(problems) < 2:
            return [self.engine.solve(p) for p in problems]
        payloads = [(self.engine, p) for p in problems]
        reports = map_with_pool_retry(_solve_zone, payloads, workers)
        if reports is None:
            return [self.engine.solve(p) for p in problems]
        return reports


@dataclass(frozen=True)
class DistributedPlacementReport(PlacementReport):
    """A :class:`~repro.core.placement.PlacementReport` solved by the
    distributed protocol, with the protocol's statistics attached.

    Drop-in wherever a ``PlacementReport`` is expected (the manager's
    history, divergence metrics, experiment tables); the extra fields
    describe the coordination work.

    Attributes
    ----------
    zones : int
        Participating zone managers.
    rounds : int
        Price-exchange epochs until termination.
    pivots : int
        Coordinator pivots across all rounds.
    gap : float
        Certified relative duality gap at termination.
    dsolve_messages : int
        Protocol messages exchanged.
    local_objective : float
        Sum of feasible zones' presolve objectives (the no-cross-zone
        baseline; ``nan`` when no zone presolved).
    presolve_warm_hits : int
        Zones whose local presolve warm-started from a previous round.
    coordinator_seconds : float
        Coordinator-side merge/pivot wall time.
    zone_seconds : dict of int to float
        Per-zone wall time (Trmin pricing + presolve + lane pricing).
    critical_path_seconds : float
        Modeled parallel wall-clock — coordinator time plus the
        slowest zone, the same reading as
        :attr:`ZonedPlacementReport.max_zone_seconds`.
    boundary_sizes : dict of int to int
        Per-zone boundary-node counts (see :func:`zone_boundaries`).
    """

    zones: int = 0
    rounds: int = 0
    pivots: int = 0
    gap: float = float("nan")
    dsolve_messages: int = 0
    local_objective: float = float("nan")
    presolve_warm_hits: int = 0
    coordinator_seconds: float = 0.0
    zone_seconds: Dict[int, float] = field(default_factory=dict)
    critical_path_seconds: float = 0.0
    boundary_sizes: Dict[int, int] = field(default_factory=dict)


class DistributedPlacementEngine:
    """Zone-decomposed Eq. 3 placement: one solve, many zone managers.

    Unlike :class:`ZonedPlacementEngine` — which forbids inter-zone
    offloading and accepts the stranded-excess cost — this engine
    reaches the *global* optimum: each zone manager prices its own busy
    rows (the Θ(m_z·n) Trmin + reduced-cost work, which dominates) and
    solves its local subproblem through a per-zone warm-started
    :class:`~repro.core.placement.PlacementSession`, while the thin
    coordinator from :mod:`repro.lp.distributed` merges the zone bases
    and exchanges consensus prices until no zone can improve. The
    returned objective equals the centralized
    :class:`~repro.core.placement.PlacementEngine` solve on the same
    problem (same LP optimum, different pivot order).

    Parameters
    ----------
    zones : sequence of Zone
        The zone partition (must cover the topology; see
        :func:`validate_partition`).
    engine : PlacementEngine, optional
        Supplies the Trmin engine, response model and LP backend for
        the local presolves. A route-less engine is built when omitted.
    price_rule : str
        ``"block"`` or ``"dantzig"`` — the coordinator's
        price-coordination rule (see
        :class:`~repro.lp.distributed.DistributedCoordinator`).
    gap_tol : float, optional
        Early-termination bound on the certified relative duality gap;
        ``None`` iterates to exact optimality.
    max_rounds : int
        Safety bound on price-exchange epochs.
    max_bids : int
        Lane bids per zone per epoch under the ``block`` rule.
    """

    def __init__(
        self,
        zones: Sequence[Zone],
        engine: Optional[PlacementEngine] = None,
        price_rule: str = "block",
        gap_tol: Optional[float] = None,
        max_rounds: int = 10_000,
        max_bids: int = 16,
    ) -> None:
        if not zones:
            raise PlacementError("DistributedPlacementEngine needs at least one zone")
        self.zones = list(zones)
        self.engine = engine or PlacementEngine(with_routes=False)
        self.price_rule = price_rule
        self.gap_tol = gap_tol
        self.max_rounds = max_rounds
        self.max_bids = max_bids
        # One session per zone: each zone's local subproblem keeps its
        # own warm basis across optimization rounds (PR 2's cheap
        # re-solves), while the shared engine keeps one route cache.
        self._sessions: Dict[int, PlacementSession] = {
            z.zone_id: PlacementSession(engine=self.engine) for z in self.zones
        }

    def reset(self) -> None:
        """Drop all per-zone warm bases (route cache unaffected)."""
        for session in self._sessions.values():
            session.reset()

    def _presolve_zone(
        self,
        zone: Zone,
        problem: PlacementProblem,
        rows: List[int],
        cols: List[int],
        trmin_rows: np.ndarray,
    ) -> Tuple[Tuple, float]:
        """Local warm-started solve of one zone's own block.

        Returns the ``(cells, objective, feasible, warm_started)``
        tuple :class:`~repro.lp.distributed.ZoneWorker` expects, plus
        the presolve's wall time. A zone whose excess exceeds its own
        spare capacity presolves a supply-clipped variant (the tree is
        what matters; the coordinator restores real supplies) and is
        marked locally infeasible.
        """
        start = time.perf_counter()
        if not rows or not cols:
            feasible = not rows or float(problem.cs[rows].sum()) <= _TOL
            return ((), float("nan"), feasible, False), time.perf_counter() - start
        zone_busy = tuple(problem.busy[i] for i in rows)
        zone_cands = tuple(problem.candidates[j] for j in cols)
        cs = problem.cs[rows]
        cd = problem.cd[cols]
        total_s, total_d = float(cs.sum()), float(cd.sum())
        clipped = total_s > total_d + _TOL
        if clipped:
            if total_d <= _TOL:
                return ((), float("nan"), False, False), time.perf_counter() - start
            cs = cs * (total_d / total_s) * (1.0 - 1e-12)
        local = PlacementProblem(
            topology=problem.topology,
            busy=zone_busy,
            candidates=zone_cands,
            cs=cs,
            cd=cd,
            data_mb=problem.data_mb[rows],
            max_hops=problem.max_hops,
        )
        report = self._sessions[zone.zone_id].solve(local)
        cells: List[Tuple[int, int, float]] = []
        if report.status.is_optimal and report.lp_basis is not None:
            for a, b in getattr(report.lp_basis, "cells", ()):
                if a >= len(rows):  # local dummy row
                    continue
                cells.append((rows[a], cols[b], float(trmin_rows[a, cols[b]])))
        feasible = report.feasible and not clipped
        objective = report.objective_beta if report.feasible else float("nan")
        elapsed = time.perf_counter() - start
        return (tuple(cells), objective, feasible, report.lp_warm_started), elapsed

    def solve(self, problem: PlacementProblem) -> DistributedPlacementReport:
        """Solve one placement instance via the distributed protocol.

        Parameters
        ----------
        problem : PlacementProblem
            Same contract as :meth:`PlacementEngine.solve`. Must be
            continuous and homogeneous — the distributed protocol
            speaks the transportation form (the paper's Eq. 3 case).

        Returns
        -------
        DistributedPlacementReport
            Globally optimal assignments (identical objective to the
            centralized solve) plus protocol statistics. Routes are not
            attached; pair with the response model to materialize them.
        """
        if problem.integral or problem.capacity_coefficients is not None:
            raise PlacementError(
                "distributed placement requires the continuous homogeneous "
                "(transportation) form; integral or heterogeneous problems "
                "must use the centralized engine"
            )
        validate_partition(problem.topology, self.zones)
        start = time.perf_counter()
        model = self.engine._model_for(problem)
        m, n = len(problem.busy), len(problem.candidates)

        owner: Dict[int, int] = {}
        for zone in self.zones:
            for node in zone.nodes:
                owner[node] = zone.zone_id
        rows_of: Dict[int, List[int]] = {z.zone_id: [] for z in self.zones}
        cols_of: Dict[int, List[int]] = {z.zone_id: [] for z in self.zones}
        for i, b in enumerate(problem.busy):
            rows_of[owner[b]].append(i)
        for j, c in enumerate(problem.candidates):
            cols_of[owner[c]].append(j)

        # Phase 0+1 per zone: full-width Trmin rows, then the local
        # warm-started presolve. Both are zone-side work.
        workers: List[ZoneWorker] = []
        trmin_seconds: Dict[int, float] = {}
        presolve_seconds: Dict[int, float] = {}
        full_trmin = np.zeros((m, n))
        full_hops = np.zeros((m, n), dtype=int)
        all_cands = list(problem.candidates)
        for zone in self.zones:
            rows = rows_of[zone.zone_id]
            cols = cols_of[zone.zone_id]
            t0 = time.perf_counter()
            if rows and n:
                trmin_rows, hops_rows, _ = self.engine.trmin_engine.trmin_matrix(
                    problem.topology,
                    [problem.busy[i] for i in rows],
                    all_cands,
                    problem.data_mb[rows],
                    with_paths=False,
                    model=model,
                )
                full_trmin[rows, :] = trmin_rows
                full_hops[rows, :] = hops_rows
            else:
                trmin_rows = np.zeros((len(rows), n))
            trmin_seconds[zone.zone_id] = time.perf_counter() - t0
            presolved, presolve_s = self._presolve_zone(
                zone, problem, rows, cols, trmin_rows
            )
            presolve_seconds[zone.zone_id] = presolve_s
            workers.append(
                ZoneWorker(
                    zone_id=zone.zone_id,
                    rows=rows,
                    cols=cols,
                    cost_rows=trmin_rows,
                    supplies=problem.cs[rows],
                    capacities=problem.cd[cols],
                    presolved=presolved,
                )
            )

        result: DistributedSolveResult = run_protocol(
            workers,
            price_rule=self.price_rule,
            gap_tol=self.gap_tol,
            max_rounds=self.max_rounds,
            max_bids=self.max_bids,
        )

        assignments: List[PlacementAssignment] = []
        if result.status.is_optimal:
            for i, j in zip(*np.nonzero(result.flow > _TOL)):
                assignments.append(
                    PlacementAssignment(
                        busy=problem.busy[int(i)],
                        candidate=problem.candidates[int(j)],
                        amount_pct=float(result.flow[i, j]),
                        response_time_s=float(full_trmin[i, j]),
                        hops=int(full_hops[i, j]),
                    )
                )

        zone_totals = {
            z.zone_id: trmin_seconds[z.zone_id]
            + presolve_seconds[z.zone_id]
            + result.zone_seconds.get(z.zone_id, 0.0)
            for z in self.zones
        }
        boundary_sizes = {
            zone_id: len(nodes)
            for zone_id, nodes in zone_boundaries(problem.topology, self.zones).items()
        }
        return DistributedPlacementReport(
            status=result.status,
            objective_beta=(
                float(result.objective) if result.status.is_optimal else float("nan")
            ),
            assignments=tuple(assignments),
            trmin_seconds=float(sum(trmin_seconds.values())),
            lp_seconds=float(
                sum(presolve_seconds.values())
                + sum(result.zone_seconds.values())
                + result.coordinator_seconds
            ),
            total_seconds=time.perf_counter() - start,
            lp_backend=self.engine.lp_backend,
            path_engine=model.engine,
            max_hops=problem.max_hops,
            total_excess=problem.total_excess,
            total_spare=problem.total_spare,
            lp_warm_started=result.presolve_warm_hits > 0,
            lp_iterations=result.pivots,
            zones=len(self.zones),
            rounds=result.rounds,
            pivots=result.pivots,
            gap=result.gap,
            dsolve_messages=result.messages,
            local_objective=result.local_objective,
            presolve_warm_hits=result.presolve_warm_hits,
            coordinator_seconds=result.coordinator_seconds,
            zone_seconds=zone_totals,
            critical_path_seconds=result.coordinator_seconds
            + (max(zone_totals.values()) if zone_totals else 0.0),
            boundary_sizes=boundary_sizes,
        )
