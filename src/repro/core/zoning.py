"""Network zoning — the paper's scaling recommendation, implemented.

The conclusion of the evaluation section: *"we suggest dividing
large-scale networks into zones containing a maximum of 80 nodes. This
approach has an acceptable optimization cost of 0.8 seconds for a
max-hop value of 7"*. This module implements that zoned deployment:

* :func:`partition_by_pod` — natural fat-tree zoning (a pod plus a
  share of the core layer);
* :func:`partition_bfs` — topology-agnostic balanced BFS zoning with a
  node budget, for fabrics without pod structure;
* :class:`ZonedPlacementEngine` — runs an independent Eq. 3 placement
  *inside each zone* and reports the per-zone and aggregate outcome,
  including the load that could not be placed inside its own zone
  (the zoning analogue of the heuristic's HFR).

Zoning trades optimality (no inter-zone offloading) for per-zone solve
times that stay within the paper's sub-second budget; the ablation
bench ``benchmarks/bench_ablation_zoning.py`` quantifies the trade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.placement import (
    PlacementAssignment,
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
)
from repro.errors import PlacementError, TopologyError
from repro.parallel import map_with_pool_retry, resolve_workers
from repro.topology.graph import NodeKind, Topology

_TOL = 1e-9


def _solve_zone(payload: Tuple[PlacementEngine, PlacementProblem]) -> PlacementReport:
    """Pool task: one zone's Eq. 3 solve (module-level so it pickles)."""
    engine, problem = payload
    return engine.solve(problem)


@dataclass(frozen=True)
class Zone:
    """One zone: a node subset treated as an independent DUST domain."""

    zone_id: int
    nodes: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.nodes:
            raise PlacementError(f"zone {self.zone_id} is empty")
        if len(set(self.nodes)) != len(self.nodes):
            raise PlacementError(f"zone {self.zone_id} repeats nodes")

    def __len__(self) -> int:
        return len(self.nodes)


def partition_by_pod(topology: Topology) -> List[Zone]:
    """Fat-tree zoning: one zone per pod, with the core switches
    round-robined across zones so every zone can relay through cores.

    Requires pod annotations (set by the fat-tree builder); raises on
    topologies without them.
    """
    pods: Dict[int, List[int]] = {}
    core: List[int] = []
    for node in topology.nodes:
        if node.pod is not None:
            pods.setdefault(node.pod, []).append(node.node_id)
        elif node.kind is NodeKind.CORE_SWITCH:
            core.append(node.node_id)
        else:
            raise TopologyError(
                f"node {node.node_id} has no pod annotation and is not a core "
                "switch; use partition_bfs for unstructured topologies"
            )
    if not pods:
        raise TopologyError("topology has no pod annotations")
    zones: List[Zone] = []
    pod_ids = sorted(pods)
    for idx, pod in enumerate(pod_ids):
        members = sorted(pods[pod])
        members += [c for j, c in enumerate(core) if j % len(pod_ids) == idx]
        zones.append(Zone(zone_id=idx, nodes=tuple(sorted(members))))
    return zones


def partition_bfs(topology: Topology, max_zone_nodes: int = 80) -> List[Zone]:
    """Balanced BFS zoning: grow zones from unvisited seeds until each
    holds at most ``max_zone_nodes`` nodes.

    Deterministic (seeds are lowest unvisited node ids) and total —
    every node lands in exactly one zone.
    """
    if max_zone_nodes < 1:
        raise PlacementError(f"max_zone_nodes must be >= 1, got {max_zone_nodes}")
    n = topology.num_nodes
    assigned = np.full(n, -1, dtype=int)
    zones: List[Zone] = []
    for seed in range(n):
        if assigned[seed] != -1:
            continue
        zone_id = len(zones)
        members: List[int] = []
        queue = [seed]
        assigned[seed] = zone_id
        while queue and len(members) < max_zone_nodes:
            node = queue.pop(0)
            members.append(node)
            for nbr in topology.neighbors(node):
                if assigned[nbr] == -1 and len(members) + len(queue) < max_zone_nodes:
                    assigned[nbr] = zone_id
                    queue.append(nbr)
        # Anything still queued beyond the budget returns to the pool.
        for node in queue:
            if node not in members:
                assigned[node] = -1
        zones.append(Zone(zone_id=zone_id, nodes=tuple(sorted(members))))
    return zones


def validate_partition(topology: Topology, zones: Sequence[Zone]) -> None:
    """Every node in exactly one zone."""
    seen: Dict[int, int] = {}
    for zone in zones:
        for node in zone.nodes:
            topology.node(node)
            if node in seen:
                raise PlacementError(
                    f"node {node} appears in zones {seen[node]} and {zone.zone_id}"
                )
            seen[node] = zone.zone_id
    missing = set(range(topology.num_nodes)) - set(seen)
    if missing:
        raise PlacementError(f"nodes {sorted(missing)} belong to no zone")


@dataclass(frozen=True)
class ZonedPlacementReport:
    """Aggregate outcome of per-zone placement."""

    zone_reports: Tuple[Tuple[Zone, PlacementReport], ...]
    unplaced_per_zone: Dict[int, float]  # excess stuck in an infeasible zone
    total_seconds: float
    #: Algorithm-1 relief of infeasible zones (zone id -> HeuristicReport),
    #: populated when the engine runs with ``heuristic_relief=True``; the
    #: relieved amounts are already subtracted from ``unplaced_per_zone``.
    heuristic_relief_per_zone: Dict[int, object] = field(default_factory=dict)

    @property
    def total_offloaded(self) -> float:
        lp = float(
            sum(r.total_offloaded for _, r in self.zone_reports if r.feasible)
        )
        relief = float(
            sum(r.total_offloaded for r in self.heuristic_relief_per_zone.values())
        )
        return lp + relief

    @property
    def total_unplaced(self) -> float:
        return float(sum(self.unplaced_per_zone.values()))

    @property
    def total_excess(self) -> float:
        return float(sum(r.total_excess for _, r in self.zone_reports))

    @property
    def zone_failure_rate_pct(self) -> float:
        """Share of total excess stuck inside infeasible zones — the
        price of forbidding inter-zone offloading."""
        excess = self.total_excess
        if excess <= _TOL:
            return 0.0
        return 100.0 * self.total_unplaced / excess

    @property
    def objective_beta(self) -> float:
        """Sum of per-zone betas over feasible zones."""
        return float(
            sum(r.objective_beta for _, r in self.zone_reports if r.feasible)
        )

    @property
    def max_zone_seconds(self) -> float:
        """Slowest zone solve — the paper's per-zone latency budget; in
        a real deployment zones solve in parallel, so this is the
        effective wall-clock."""
        if not self.zone_reports:
            return 0.0
        return max(r.total_seconds for _, r in self.zone_reports)

    def assignments(self) -> List[PlacementAssignment]:
        out: List[PlacementAssignment] = []
        for _, report in self.zone_reports:
            out.extend(report.assignments)
        for relief in self.heuristic_relief_per_zone.values():
            out.extend(relief.assignments)
        return out


class ZonedPlacementEngine:
    """Per-zone Eq. 3 placement."""

    def __init__(
        self,
        engine: Optional[PlacementEngine] = None,
        max_hops: Optional[int] = 7,
        workers: Optional[int] = None,
        heuristic_relief: bool = False,
    ) -> None:
        self.engine = engine or PlacementEngine(with_routes=False, workers=workers)
        self.max_hops = max_hops
        self.workers = workers
        #: When True, an infeasible zone gets a second chance through
        #: the vectorized Algorithm-1 kernel: partial one-hop relief
        #: beats leaving the whole zone's excess stranded (the same
        #: policy DUSTManager applies on infeasible rounds).
        self.heuristic_relief = heuristic_relief

    def solve(
        self,
        topology: Topology,
        zones: Sequence[Zone],
        busy: Sequence[int],
        candidates: Sequence[int],
        cs: Sequence[float],
        cd: Sequence[float],
        data_mb: Sequence[float],
    ) -> ZonedPlacementReport:
        """Solve each zone independently; busy/candidate nodes outside
        their zone's membership never exchange load."""
        validate_partition(topology, zones)
        start = time.perf_counter()
        cs_of = dict(zip(busy, map(float, cs)))
        cd_of = dict(zip(candidates, map(float, cd)))
        data_of = dict(zip(busy, map(float, data_mb)))

        problems: List[PlacementProblem] = []
        for zone in zones:
            members = set(zone.nodes)
            zone_busy = tuple(b for b in busy if b in members)
            zone_cands = tuple(c for c in candidates if c in members)
            problems.append(
                PlacementProblem(
                    topology=topology,
                    busy=zone_busy,
                    candidates=zone_cands,
                    cs=np.array([cs_of[b] for b in zone_busy]),
                    cd=np.array([cd_of[c] for c in zone_cands]),
                    data_mb=np.array([data_of[b] for b in zone_busy]),
                    max_hops=self.max_hops,
                )
            )
        reports = self._solve_all(problems)

        zone_reports: List[Tuple[Zone, PlacementReport]] = []
        unplaced: Dict[int, float] = {}
        relief_reports: Dict[int, object] = {}
        for zone, problem, report in zip(zones, problems, reports):
            zone_reports.append((zone, report))
            if not report.feasible:
                stuck = float(problem.total_excess)
                if self.heuristic_relief and problem.busy and problem.candidates:
                    from repro.core.heuristic import solve_heuristic

                    relief = solve_heuristic(problem)
                    if relief.assignments:
                        relief_reports[zone.zone_id] = relief
                        stuck = max(0.0, stuck - relief.total_offloaded)
                unplaced[zone.zone_id] = stuck
        return ZonedPlacementReport(
            zone_reports=tuple(zone_reports),
            unplaced_per_zone=unplaced,
            total_seconds=time.perf_counter() - start,
            heuristic_relief_per_zone=relief_reports,
        )

    def _solve_all(self, problems: List[PlacementProblem]) -> List[PlacementReport]:
        """Solve zones serially or on the worker pool; order preserved.

        Zones are independent subproblems, so each zone's report is the
        same object-for-object result either way; any pool failure
        (restricted sandbox, unpicklable backend) degrades to serial.
        """
        workers = resolve_workers(self.workers, task_count=len(problems))
        if workers <= 1 or len(problems) < 2:
            return [self.engine.solve(p) for p in problems]
        payloads = [(self.engine, p) for p in problems]
        reports = map_with_pool_retry(_solve_zone, payloads, workers)
        if reports is None:
            return [self.engine.solve(p) for p in problems]
        return reports
