"""DUST-Manager: admission, NMDB upkeep, placement, post-offload care.

The manager is "a decision node [that] defines the most optimized
destination monitoring node by evaluating network resource utilization,
monitoring capabilities, and the number of monitoring agents". This
implementation runs three loops on the discrete-event engine:

* **message handling** — Offload-capable → ACK (announcing the
  Update-Interval Time), STAT → NMDB, Offload-ACK → ledger + Redirect,
  Keepalive → tracker;
* **optimization rounds** — periodically snapshot the NMDB, build the
  Eq. 3 placement problem, solve it with the configured
  :class:`~repro.core.placement.PlacementEngine` (optionally falling
  back to Algorithm 1 when the ILP is infeasible), and send
  Offload-Requests along the chosen controllable routes;
* **keepalive sweeps** — expired destinations are evicted and their
  workloads re-homed onto replicas via REP, or returned to their
  sources via Reclaim when no replica fits.

Lossy-network hardening (opt-in via ``retry_policy``): every handler
dedups by ``(sender, msg_id)`` with a reply cache, Offload-Request /
Redirect / REP / Reclaim are retransmitted with exponential backoff
until their application-level confirmation (Offload-ACK or Receipt)
arrives, and destinations that exhaust the retry budget are quarantined
out of the candidate set. With ``snapshot_store`` set the manager
persists its state (NMDB + ledger + keepalive watch set) on every
update, heartbeats a standby, and a recovered manager reconciles the
restored snapshot against client ground truth in a resync round — see
:mod:`repro.core.failover`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace as dc_replace
from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.messages import (
    Ack,
    ControlMessage,
    DedupCache,
    Keepalive,
    ManagerHeartbeat,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Receipt,
    Reclaim,
    Redirect,
    ReliableSender,
    Rep,
    Resync,
    RetryPolicy,
    Stat,
)
from repro.core.nmdb import NMDB
from repro.core.offload import ActiveOffload, OffloadLedger
from repro.core.placement import (
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
    PlacementSession,
)
from repro.core.postoffload import KeepaliveTracker, ReplicaSelector
from repro.obs import (
    MANAGER_COUNTERS_MIRROR,
    get_registry,
    mirror_counters,
    trace_span,
)
from repro.core.thresholds import ThresholdPolicy
from repro.errors import ProtocolError
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import Message, MessageNetwork
from repro.topology.graph import Topology

_TOL = 1e-9

#: Minimum spacing between corrective Reclaims for one
#: (source, destination) pair — comfortably past the retry budget's
#: give-up horizon, so a repair either landed or was abandoned before
#: the next attempt can double-subtract a hosting.
_RECLAIM_COOLDOWN_S = 60.0


@dataclass
class ManagerCounters:
    """Observable manager activity, consumed by experiments and tests."""

    acks_sent: int = 0
    stats_received: int = 0
    optimization_rounds: int = 0
    infeasible_rounds: int = 0
    heuristic_fallbacks: int = 0
    offload_requests_sent: int = 0
    offloads_established: int = 0
    offloads_rejected: int = 0
    keepalives_received: int = 0
    destinations_failed: int = 0
    replicas_installed: int = 0
    workloads_returned: int = 0
    reclaims_issued: int = 0
    # -- reliability / transport (lossy-network hardening) ----------------
    duplicates_ignored: int = 0
    stale_stats_dropped: int = 0
    stale_acks_ignored: int = 0
    acks_reconfirmed: int = 0
    probes_sent: int = 0
    orphans_reclaimed: int = 0
    destinations_quarantined: int = 0
    sources_abandoned: int = 0
    resync_rounds: int = 0
    resync_recovered: int = 0
    redirects_unwound: int = 0
    snapshots_persisted: int = 0
    # -- degradation ladder (soak control plane) ---------------------------
    rounds_frozen: int = 0
    placements_reset: int = 0
    # Mirrored from the reliable sender / network by
    # :meth:`DUSTManager.refresh_transport_counters` so reports see one
    # consolidated counter block.
    retransmissions: int = 0
    sends_gave_up: int = 0
    network_messages_dropped: int = 0
    network_duplicates_delivered: int = 0


@dataclass(frozen=True)
class _PendingRequest:
    source: int
    destination: int
    amount_pct: float
    route: Tuple[int, ...]
    via_replica: bool = False
    created_at: float = 0.0


class DUSTManager:
    """Cloud-based coordination point of a DUST deployment."""

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        engine: SimulationEngine,
        network: MessageNetwork,
        policy: ThresholdPolicy,
        placement_engine: Optional[PlacementEngine] = None,
        update_interval_s: float = 60.0,
        optimization_period_s: float = 60.0,
        keepalive_timeout_s: float = 30.0,
        max_hops: Optional[int] = None,
        heuristic_fallback: bool = True,
        reclaim_hysteresis_pct: float = 5.0,
        workers: Optional[int] = None,
        retry_policy: Optional[RetryPolicy] = None,
        quarantine_s: float = 300.0,
        probe_grace_s: Optional[float] = None,
        snapshot_store: Optional["object"] = None,
        standby_node: Optional[int] = None,
        heartbeat_period_s: float = 10.0,
        resync_window_s: float = 120.0,
        dedup_capacity: int = 4096,
        dedup_ttl_s: Optional[float] = None,
        transport_seed: int = 0,
        on_admission: Optional[Callable[[int], None]] = None,
        on_eviction: Optional[Callable[[int], None]] = None,
        solve_mode: str = "centralized",
        zones: Optional[Sequence["object"]] = None,
    ) -> None:
        self.node_id = node_id
        self.topology = topology
        self.engine = engine
        self.network = network
        self.policy = policy
        self.nmdb = NMDB(topology, policy)
        self.placement_engine = placement_engine or PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops),
            workers=workers,
        )
        # Periodic re-solves run through a session so each optimization
        # round warm-starts the LP from the previous round's basis (and
        # keeps hitting the engine's incremental route cache).
        self.placement_session = PlacementSession(engine=self.placement_engine)
        # Alternative solve mode: decompose each round's Eq. 3 solve
        # across zone managers (repro.lp.distributed). Same optimum as
        # the centralized session — the zones split the pricing work.
        if solve_mode not in ("centralized", "distributed"):
            raise ProtocolError(
                f"unknown solve_mode {solve_mode!r}; expected "
                "'centralized' or 'distributed'"
            )
        self.solve_mode = solve_mode
        self.distributed_engine = None
        if solve_mode == "distributed":
            from repro.core.zoning import (
                DistributedPlacementEngine,
                partition_bfs,
                partition_by_pod,
            )
            from repro.errors import TopologyError

            if zones is None:
                try:
                    zones = partition_by_pod(topology)
                except TopologyError:
                    zones = partition_bfs(topology)
            self.distributed_engine = DistributedPlacementEngine(
                zones=zones, engine=self.placement_engine
            )
        self.workers = workers
        self.update_interval_s = update_interval_s
        self.optimization_period_s = optimization_period_s
        self.keepalive_timeout_s = keepalive_timeout_s
        self.max_hops = max_hops
        self.heuristic_fallback = heuristic_fallback
        self.reclaim_hysteresis_pct = reclaim_hysteresis_pct
        #: A node whose last STAT is older than this is treated as gone.
        self.stale_after_s = 2.5 * update_interval_s
        self.retry_policy = retry_policy
        self.quarantine_s = quarantine_s
        # Keepalive silence triggers a reliable probe, not an eviction;
        # the grace covers the probe's full retry budget plus one more
        # keepalive period before the destination is written off.
        if probe_grace_s is None:
            if retry_policy is not None:
                probe_grace_s = keepalive_timeout_s + sum(
                    retry_policy.timeout_for(a)
                    for a in range(retry_policy.max_retries + 1)
                )
            else:
                probe_grace_s = keepalive_timeout_s
        self.probe_grace_s = probe_grace_s
        self.snapshot_store = snapshot_store
        self.standby_node = standby_node
        self.heartbeat_period_s = heartbeat_period_s
        self.resync_window_s = resync_window_s

        self.ledger = OffloadLedger()
        self.keepalives = KeepaliveTracker(keepalive_timeout_s)
        self.replica_selector = ReplicaSelector(
            ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops)
        )
        self.counters = ManagerCounters()
        self.placement_history: List[PlacementReport] = []
        self._pending: Dict[Tuple[int, int], _PendingRequest] = {}
        self._started = False
        self._crashed = False
        self._dedup = DedupCache(
            capacity=dedup_capacity, ttl_s=dedup_ttl_s, clock=lambda: engine.now
        )
        self._reliable: Optional[ReliableSender] = (
            ReliableSender(network, engine, node_id, retry_policy, seed=transport_seed)
            if retry_policy is not None
            else None
        )
        #: Churn hooks for long-running drivers (the soak control plane
        #: observes admission/eviction without poking counters).
        self.on_admission = on_admission
        self.on_eviction = on_eviction
        #: Degradation-ladder controls: a frozen manager skips its
        #: optimization rounds (serving the stale placement) and the
        #: round period may be widened mid-run — the optimize loop
        #: re-reads ``optimization_period_s`` on every tick.
        self.placement_frozen = False
        self._quarantined: Dict[int, float] = {}  # node -> quarantined until
        # Redirect msg_id -> source, while the client's Receipt is
        # outstanding; confirmation times gate re-placing that source.
        self._unconfirmed_redirects: Dict[int, int] = {}
        self._redirect_confirmed_at: Dict[int, float] = {}
        # (source, destination) rows deliberately unwound at takeover
        # because the source never confirmed the predecessor's Redirect;
        # a destination's resync report must not resurrect them.
        self._unwound_offloads: Set[Tuple[int, int]] = set()
        # (source, destination) -> time of the last corrective Reclaim;
        # repeated repair attempts within the cooldown are dropped so a
        # raced pair of re-reports cannot double-subtract a hosting.
        self._corrective_reclaim_at: Dict[Tuple[int, int], float] = {}
        self._probes: Dict[int, float] = {}  # destination -> grace deadline
        self._probe_failed: Set[int] = set()
        self._resync_until = float("-inf")
        self._snapshot_version = 0

    # -- lifecycle --------------------------------------------------------------------
    def start(self) -> None:
        """Register on the network and start the periodic loops."""
        if self._started:
            raise ProtocolError("manager already started")
        self._started = True
        self.network.register(self.node_id, self._receive)

        # Self-rescheduling optimize loop (not schedule_periodic): the
        # degradation ladder may widen ``optimization_period_s`` or set
        # ``placement_frozen`` mid-run, and each tick must honour the
        # current values.
        def optimize_tick(engine: SimulationEngine) -> None:
            if self._crashed:
                return
            if self.placement_frozen:
                self.counters.rounds_frozen += 1
            else:
                self.run_optimization_round()
            engine.schedule_after(
                self.optimization_period_s, optimize_tick, "manager-optimize"
            )

        self.engine.schedule_after(
            self.optimization_period_s, optimize_tick, "manager-optimize"
        )
        self.engine.schedule_periodic(
            self.keepalive_timeout_s / 2.0,
            lambda engine: self.run_keepalive_sweep(),
            label="manager-keepalive-sweep",
            condition=lambda: not self._crashed,
        )
        if self.standby_node is not None:
            self.engine.schedule_periodic(
                self.heartbeat_period_s,
                lambda engine: self._send_heartbeat(),
                label="manager-heartbeat",
                first_delay=0.0,
                condition=lambda: not self._crashed,
            )

    @property
    def alive(self) -> bool:
        return self._started and not self._crashed

    def crash(self) -> None:
        """Fail-stop the manager: deregister, stop loops and timers.

        The failover path (:class:`~repro.core.failover.StandbyManager`)
        detects the resulting heartbeat silence and takes over.
        """
        if self._crashed:
            raise ProtocolError("manager already crashed")
        self._crashed = True
        self.network.unregister(self.node_id)
        if self._reliable is not None:
            self._reliable.cancel_all()

    def _send_heartbeat(self) -> None:
        self.network.send(
            self.node_id,
            self.standby_node,
            ManagerHeartbeat(
                manager_node=self.node_id,
                snapshot_version=self._snapshot_version,
                timestamp=self.engine.now,
            ),
        )

    # -- reliable transport helpers -----------------------------------------------------
    def _send_ctrl(self, destination: int, payload: ControlMessage, on_give_up=None) -> None:
        """Send a control message, ACK-gated when hardening is on."""
        if self._reliable is not None:
            self._reliable.send(destination, payload, on_give_up=on_give_up)
        else:
            self.network.send(self.node_id, destination, payload)

    def _clear_probe(self, node: int) -> None:
        self._probes.pop(node, None)
        self._probe_failed.discard(node)

    def _quarantine(self, node: int) -> None:
        self._quarantined[node] = self.engine.now + self.quarantine_s
        self.counters.destinations_quarantined += 1

    def quarantined_nodes(self) -> Set[int]:
        """Currently quarantined nodes (expired entries are purged)."""
        now = self.engine.now
        for node in [n for n, until in self._quarantined.items() if until <= now]:
            del self._quarantined[node]
        return set(self._quarantined)

    def refresh_transport_counters(self) -> ManagerCounters:
        """Mirror reliable-sender and network counters into
        :class:`ManagerCounters` so reports surface drops, duplicates
        and retransmissions alongside protocol activity."""
        if self._reliable is not None:
            self.counters.retransmissions = self._reliable.retransmissions
            self.counters.sends_gave_up = self._reliable.gave_up
        self.counters.network_messages_dropped = self.network.messages_dropped
        self.counters.network_duplicates_delivered = getattr(
            self.network, "duplicates_injected", 0
        )
        return self.counters

    # -- state persistence / failover ----------------------------------------------------
    def _persist(self) -> None:
        if self.snapshot_store is None:
            return
        self._snapshot_version += 1
        self.snapshot_store.save(self.export_snapshot())
        self.counters.snapshots_persisted += 1

    def export_snapshot(self):
        """Current durable state as a
        :class:`~repro.core.failover.ManagerSnapshot`."""
        from repro.core.failover import ManagerSnapshot

        return ManagerSnapshot(
            version=self._snapshot_version,
            timestamp=self.engine.now,
            records=self.nmdb.export_records(),
            ledger_rows=tuple(dc_replace(o) for o in self.ledger.active),
            keepalive_watch=self.keepalives.export(),
            unconfirmed_sources=tuple(
                sorted(set(self._unconfirmed_redirects.values()))
            ),
        )

    def restore_snapshot(self, snapshot) -> None:
        """Adopt a predecessor's persisted state (failover takeover).

        Keepalive clocks restart at *now*: destinations get one full
        timeout to re-heartbeat instead of being mass-evicted for
        silence that happened while no manager was listening.

        Ledger rows whose source never confirmed the predecessor's
        Redirect are *unwound*, not adopted: the source may never have
        applied the offload (the Redirect died with the primary), so
        keeping the row would park hosting capacity on the destination
        for load the source still carries. Reclaim goes to both ends —
        a source that never applied it treats the take-back as a no-op,
        one whose Receipt was lost in flight rolls the mapping back —
        and the next optimization round re-places the excess cleanly.
        """
        self._snapshot_version = snapshot.version
        self.nmdb.load_records(snapshot.records)
        unconfirmed = set(getattr(snapshot, "unconfirmed_sources", ()))
        for row in snapshot.ledger_rows:
            self.ledger.add(dc_replace(row))
        for node in snapshot.keepalive_watch:
            self.keepalives.record(node, self.engine.now)
        for source in sorted(unconfirmed):
            for offload in self.ledger.reclaim(source):
                self.counters.redirects_unwound += 1
                self._unwound_offloads.add((offload.source, offload.destination))
                self._corrective_reclaim_at[
                    (offload.source, offload.destination)
                ] = self.engine.now
                self._send_ctrl(
                    offload.destination,
                    Reclaim(
                        source=offload.source,
                        destination=offload.destination,
                        amount_pct=offload.amount_pct,
                    ),
                )
                self._send_ctrl(
                    offload.source,
                    Reclaim(
                        source=offload.source,
                        destination=offload.destination,
                        amount_pct=offload.amount_pct,
                    ),
                )
        if unconfirmed:
            self._persist()

    def begin_resync(self) -> int:
        """Open the post-failover reconciliation window and ask every
        client for ground truth; returns the number of Resync messages
        sent."""
        self._resync_until = self.engine.now + self.resync_window_s
        self.counters.resync_rounds += 1
        return self.network.broadcast(
            self.node_id,
            Resync(manager_node=self.node_id, timestamp=self.engine.now),
        )

    # -- message plane ------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        if self._crashed:
            return
        payload = message.payload
        if not isinstance(payload, ControlMessage):
            raise ProtocolError("manager received non-DUST payload")
        duplicate, cached_reply = self._dedup.check(message.source, payload.msg_id)
        if duplicate:
            self.counters.duplicates_ignored += 1
            if cached_reply is not None:
                self.network.send(self.node_id, message.source, cached_reply)
            return
        reply: Optional[ControlMessage] = None
        if isinstance(payload, OffloadCapable):
            reply = self._on_offload_capable(payload)
        elif isinstance(payload, Stat):
            reply = self._on_stat(payload)
        elif isinstance(payload, OffloadAck):
            reply = self._on_offload_ack(payload)
        elif isinstance(payload, Keepalive):
            self.counters.keepalives_received += 1
            self.keepalives.record(payload.node_id, payload.timestamp)
            self._clear_probe(payload.node_id)
            # A heartbeat naming a source this ledger cannot account
            # for means the destination carries an orphaned hosting
            # (e.g. its resync report never arrived). Ask for a full
            # re-report; the resync reply paths reconcile or reclaim.
            known = {o.source for o in self.ledger.hosted_by(payload.node_id)}
            if any(s not in known for s in payload.hosted_sources):
                self.network.send(
                    self.node_id,
                    payload.node_id,
                    Resync(manager_node=self.node_id, timestamp=self.engine.now),
                )
        elif isinstance(payload, Receipt) and self._reliable is not None:
            self._reliable.acknowledge(payload.acked_msg_id)
            confirmed_source = self._unconfirmed_redirects.pop(
                payload.acked_msg_id, None
            )
            if confirmed_source is not None:
                self._redirect_confirmed_at[confirmed_source] = self.engine.now
                # Persist the confirmation: a successor must not unwind
                # a row whose source provably applied its Redirect.
                self._persist()
            if payload.node_id in self._probes or payload.node_id in self._probe_failed:
                # Answer to a keepalive probe: the destination lives.
                self.keepalives.record(payload.node_id, self.engine.now)
                self._clear_probe(payload.node_id)
        else:
            raise ProtocolError(f"manager cannot handle {payload.type.value!r}")
        self._dedup.remember(message.source, payload.msg_id, reply)

    def _on_offload_capable(self, payload: OffloadCapable) -> Ack:
        self.nmdb.register_capability(payload)
        self._persist()
        self.counters.acks_sent += 1
        if self.on_admission is not None:
            self.on_admission(payload.node_id)
        ack = Ack(node_id=payload.node_id, update_interval_s=self.update_interval_s)
        self.network.send(self.node_id, payload.node_id, ack)
        return ack

    def _on_stat(self, payload: Stat) -> Optional[Receipt]:
        self.counters.stats_received += 1
        receipt: Optional[Receipt] = None
        if self._reliable is not None and payload.reliable:
            # Admission STAT: the client retransmits it until this
            # receipt lands, so delivery (not content) is confirmed
            # even for reports the staleness check discards.
            receipt = Receipt(node_id=self.node_id, acked_msg_id=payload.msg_id)
            self.network.send(self.node_id, payload.node_id, receipt)
        # On a reliable fabric an out-of-order STAT means a protocol bug
        # (strict mode raises); under loss/reordering it is expected —
        # the stale report is dropped, the newer state wins.
        applied = self.nmdb.apply_stat(payload, strict=self.retry_policy is None)
        if not applied:
            self.counters.stale_stats_dropped += 1
            return receipt
        self._persist()
        self._maybe_reclaim(payload)
        return receipt

    def _on_offload_ack(self, ack: OffloadAck) -> Optional[Receipt]:
        if self._reliable is not None:
            self._reliable.acknowledge(ack.request_id)
        receipt: Optional[Receipt] = None
        if self._reliable is not None and ack.reason == "resync":
            # Resync reports are retransmitted until confirmed — the
            # Receipt (also cached for duplicates by the dedup layer)
            # stops the destination's sender.
            receipt = Receipt(node_id=self.node_id, acked_msg_id=ack.msg_id)
            self.network.send(self.node_id, ack.destination, receipt)
        pending = self._pending.pop((ack.source, ack.destination), None)
        if pending is None:
            self._on_unmatched_ack(ack)
            return receipt
        if not ack.accepted:
            self.counters.offloads_rejected += 1
            return receipt
        self.counters.offloads_established += 1
        self._unwound_offloads.discard((pending.source, pending.destination))
        self.ledger.add(
            ActiveOffload(
                source=pending.source,
                destination=pending.destination,
                amount_pct=pending.amount_pct,
                route=pending.route,
                established_at=self.engine.now,
                via_replica=pending.via_replica,
            )
        )
        # The source is redirected for fresh offloads *and* for replica
        # substitutions — in the latter case its stale mapping to the
        # failed destination was already cancelled during the sweep.
        redirect = Redirect(
            source=pending.source,
            destination=pending.destination,
            amount_pct=pending.amount_pct,
            route=pending.route,
        )
        if self._reliable is not None:
            # Until the source's Receipt lands its capacity reports
            # still include the redirected load — track the window so
            # optimization rounds don't re-place the same excess, and a
            # successor restoring the snapshot knows this row's source
            # side is unproven. Registered *before* the persist so the
            # two invariants travel together: every snapshot holding
            # the row either holds its pending-confirmation mark or
            # postdates the source's Receipt.
            self._unconfirmed_redirects[redirect.msg_id] = pending.source
        self._persist()
        self.keepalives.watch(pending.destination, self.engine.now)
        self._send_ctrl(pending.source, redirect, on_give_up=self._on_redirect_give_up)
        return receipt

    def _on_unmatched_ack(self, ack: OffloadAck) -> None:
        """An Offload-ACK with no pending request.

        Three legitimate lossy-fabric causes: a resync re-confirmation
        after failover (rebuild the ledger row the snapshot missed), an
        acceptance that arrived after the retry budget gave up (the
        destination hosts an orphan — reclaim it), or a stale/raced
        duplicate (ignore). On a reliable fabric it is a protocol bug.
        """
        in_resync = self.engine.now <= self._resync_until
        if in_resync and ack.accepted and ack.amount_pct > _TOL:
            if (ack.source, ack.destination) in self._unwound_offloads:
                # The destination's resync report raced the takeover
                # unwind Reclaim — repeat the take-back rather than
                # resurrect a row the source may never have applied.
                self._corrective_reclaim(ack.source, ack.destination, ack.amount_pct)
                return
            known = self.ledger.pair_amount(ack.source, ack.destination)
            if known > _TOL:
                excess = ack.amount_pct - known
                if excess > _TOL:
                    # The destination hosts more for this source than
                    # the books say: the surplus was established but
                    # never persisted, so its source was never
                    # redirected — take back the destination's share.
                    self._corrective_reclaim(ack.source, ack.destination, excess)
            else:
                self.ledger.add(
                    ActiveOffload(
                        source=ack.source,
                        destination=ack.destination,
                        amount_pct=ack.amount_pct,
                        route=(ack.source, ack.destination),
                        established_at=self.engine.now,
                    )
                )
                self.counters.resync_recovered += 1
                # The destination's hosting proves only its own side.
                # The predecessor persisted every row *before* sending
                # its Redirect, so a row missing from the snapshot
                # means the source was never redirected — complete the
                # handshake now, or the source keeps carrying load the
                # destination also hosts.
                redirect = Redirect(
                    source=ack.source,
                    destination=ack.destination,
                    amount_pct=ack.amount_pct,
                    route=(ack.source, ack.destination),
                )
                if self._reliable is not None:
                    self._unconfirmed_redirects[redirect.msg_id] = ack.source
                self._persist()
                self._send_ctrl(
                    ack.source, redirect, on_give_up=self._on_redirect_give_up
                )
            self.keepalives.watch(ack.destination, self.engine.now)
            return
        if self.retry_policy is None:
            raise ProtocolError(
                f"unexpected Offload-ACK for {ack.source}->{ack.destination}"
            )
        if ack.accepted and ack.amount_pct > _TOL:
            known = self.ledger.pair_amount(ack.source, ack.destination)
            if known > _TOL:
                # Re-confirmation of a row that is still live (e.g. the
                # destination answered a keepalive probe's Resync):
                # proof of life, not an orphan — but a hosting larger
                # than the books means an unpersisted surplus is hiding
                # inside the aggregate; take back the difference.
                excess = ack.amount_pct - known
                if excess > _TOL:
                    self._corrective_reclaim(ack.source, ack.destination, excess)
                self.counters.acks_reconfirmed += 1
                self.keepalives.record(ack.destination, self.engine.now)
                self._clear_probe(ack.destination)
                return
            # The give-up already wrote this destination off; undo the
            # orphaned hosting so client and ledger re-converge.
            self._corrective_reclaim(ack.source, ack.destination, ack.amount_pct)
            return
        self.counters.stale_acks_ignored += 1

    def _corrective_reclaim(
        self, source: int, destination: int, amount_pct: float
    ) -> None:
        """Undo an orphaned (or surplus) hosting, at most once per
        cooldown per pair: Reclaim *subtracts*, so a raced duplicate of
        a partial repair would eat into a legitimate hosting."""
        key = (source, destination)
        last = self._corrective_reclaim_at.get(key)
        if last is not None and self.engine.now - last < _RECLAIM_COOLDOWN_S:
            return
        self._corrective_reclaim_at[key] = self.engine.now
        self.counters.orphans_reclaimed += 1
        self._send_ctrl(
            destination,
            Reclaim(source=source, destination=destination, amount_pct=amount_pct),
        )

    # -- give-up (retry budget exhausted) hooks ---------------------------------------
    def _on_request_give_up(self, destination: int, payload: ControlMessage) -> None:
        """Offload-Request / REP never confirmed: free the pending slot
        and quarantine the unreachable destination out of the candidate
        set before the next placement round."""
        if isinstance(payload, OffloadRequest):
            self._pending.pop((payload.source, payload.destination), None)
        elif isinstance(payload, Rep):
            self._pending.pop((payload.source, payload.replica), None)
        self._quarantine(destination)

    def _on_probe_give_up(self, destination: int, payload: ControlMessage) -> None:
        """A keepalive probe exhausted its retries: the destination is
        genuinely unreachable, not just unlucky. The next sweep makes
        the eviction final; quarantine keeps it out of placement."""
        self._probe_failed.add(destination)
        self._quarantine(destination)

    def _on_redirect_give_up(self, destination: int, payload: ControlMessage) -> None:
        """A source never confirmed its Redirect — it is unreachable
        (likely crashed). Its ledger rows are reclaimed so hosting
        capacity is not parked for a ghost.

        The take-back also goes to the source itself: "never confirmed"
        may mean the *Receipts* were the unlucky messages, leaving a
        live source that applied every Redirect it was written off for.
        A dead source never sees the message; one that never applied
        treats the roll-back as a no-op."""
        self.counters.sources_abandoned += 1
        self._unconfirmed_redirects.pop(payload.msg_id, None)
        for offload in self.ledger.reclaim(destination):
            self._corrective_reclaim_at[
                (offload.source, offload.destination)
            ] = self.engine.now
            self._send_ctrl(
                offload.destination,
                Reclaim(
                    source=offload.source,
                    destination=offload.destination,
                    amount_pct=offload.amount_pct,
                ),
            )
            self._send_ctrl(
                offload.source,
                Reclaim(
                    source=offload.source,
                    destination=offload.destination,
                    amount_pct=offload.amount_pct,
                ),
            )
        self._persist()

    # -- optimization rounds ----------------------------------------------------------------
    def run_optimization_round(self) -> Optional[PlacementReport]:
        """One manager decision cycle; returns the placement report (or
        ``None`` when there was nothing to do).

        Wall time lands in ``manager.optimization_round_seconds`` and,
        when tracing is on, the whole cycle — Trmin pricing, LP solve,
        offload message dispatch — nests under one
        ``manager.optimization_round`` span. Protocol counters are
        mirrored into the ``manager.*`` metrics at the end of the
        round."""
        start = time.perf_counter()
        with trace_span("manager.optimization_round", manager=self.node_id):
            report = self._run_optimization_round_impl()
        get_registry().histogram("manager.optimization_round_seconds").observe(
            time.perf_counter() - start
        )
        mirror_counters(self.counters, MANAGER_COUNTERS_MIRROR)
        return report

    def _run_optimization_round_impl(self) -> Optional[PlacementReport]:
        self.counters.optimization_rounds += 1
        self.refresh_transport_counters()
        # Expire pending requests whose request or reply was lost (e.g.
        # the endpoint died in flight) so their nodes are not excluded
        # from placement forever. (With the reliable sender active the
        # give-up hook usually clears them first.)
        deadline = self.engine.now - 2.0 * self.optimization_period_s
        for key in [k for k, p in self._pending.items() if p.created_at < deadline]:
            del self._pending[key]
        snapshot = self.nmdb.snapshot(self.engine.now)
        # Nodes with in-flight requests are skipped this round to avoid
        # double-committing the same excess/space; nodes whose STATs
        # have gone stale (crashed or never admitted) are excluded
        # entirely — their NMDB record no longer reflects reality;
        # quarantined nodes proved unreachable and sit out until their
        # quarantine expires.
        in_flight_sources = {p.source for p in self._pending.values()}
        in_flight_dests = {p.destination for p in self._pending.values()}
        stale = set(self.nmdb.stale_nodes(self.engine.now, self.stale_after_s))
        quarantined = self.quarantined_nodes()
        # A node's report must post-date its newest ledger row: a STAT
        # sent before the Redirect/Offload-Request landed still shows
        # the pre-assignment load, and acting on it would double-book
        # the same excess (or over-count a destination's spare). Only
        # bites under lossy delivery, where redirects arrive late and
        # the superseding stats can go missing.
        fresh_cutoff: Dict[int, float] = {}
        for row in self.ledger.active:
            for endpoint in (row.source, row.destination):
                fresh_cutoff[endpoint] = max(
                    fresh_cutoff.get(endpoint, float("-inf")), row.established_at
                )

        # Sources with an unconfirmed Redirect in flight (no Receipt
        # yet) still report pre-redirect load; after confirmation, only
        # a STAT sent at/after the confirmation proves the redirect
        # took effect.
        unconfirmed_sources = set(self._unconfirmed_redirects.values())
        for source, confirmed_at in self._redirect_confirmed_at.items():
            fresh_cutoff[source] = max(
                fresh_cutoff.get(source, float("-inf")), confirmed_at
            )

        def reported_since_assignment(node: int) -> bool:
            cutoff = fresh_cutoff.get(node)
            return cutoff is None or self.nmdb.record(node).last_stat_time >= cutoff

        busy = [
            b
            for b in snapshot.busy
            if b not in in_flight_sources
            and b != self.node_id
            and b not in stale
            and b not in unconfirmed_sources
            and reported_since_assignment(b)
        ]
        candidates = [
            c
            for c in snapshot.candidates
            if c not in in_flight_dests
            and c != self.node_id
            and c not in stale
            and c not in quarantined
            and reported_since_assignment(c)
        ]
        if not busy:
            return None
        problem = PlacementProblem(
            topology=self.topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([self.policy.excess_load(snapshot.capacities[b]) for b in busy]),
            cd=np.array(
                [self.policy.spare_capacity(snapshot.capacities[c]) for c in candidates]
            ),
            data_mb=snapshot.data_mb[busy],
            max_hops=self.max_hops,
        )
        if self.distributed_engine is not None:
            report = self.distributed_engine.solve(problem)
        else:
            report = self.placement_session.solve(problem)
        self.placement_history.append(report)
        assignments = report.assignments
        if not report.feasible:
            self.counters.infeasible_rounds += 1
            if self.heuristic_fallback:
                # Partial relief beats none: Algorithm 1 places whatever
                # fits one hop away even when Eq. 3 has no full solution.
                self.counters.heuristic_fallbacks += 1
                assignments = solve_heuristic(
                    problem, trmin_engine=self.placement_engine.trmin_engine
                ).assignments
            else:
                return report
        for assignment in assignments:
            route = (
                tuple(assignment.route.nodes)
                if assignment.route is not None
                else (assignment.busy, assignment.candidate)
            )
            request = OffloadRequest(
                destination=assignment.candidate,
                source=assignment.busy,
                amount_pct=assignment.amount_pct,
                data_mb=float(
                    snapshot.data_mb[assignment.busy]
                    * assignment.amount_pct
                    / max(self.policy.excess_load(snapshot.capacities[assignment.busy]), 1e-9)
                ),
                route=route,
            )
            self._pending[(assignment.busy, assignment.candidate)] = _PendingRequest(
                source=assignment.busy,
                destination=assignment.candidate,
                amount_pct=assignment.amount_pct,
                route=route,
                created_at=self.engine.now,
            )
            self.counters.offload_requests_sent += 1
            self._send_ctrl(
                assignment.candidate, request, on_give_up=self._on_request_give_up
            )
        return report

    # -- keepalive sweeps --------------------------------------------------------------------
    def run_keepalive_sweep(self) -> List[int]:
        """Evict expired destinations, re-home their workloads; returns
        the failed destinations."""
        with trace_span("manager.keepalive_sweep", manager=self.node_id):
            failed_nodes = self._run_keepalive_sweep_impl()
        mirror_counters(self.counters, MANAGER_COUNTERS_MIRROR)
        return failed_nodes

    def _run_keepalive_sweep_impl(self) -> List[int]:
        now = self.engine.now
        expired = [
            node
            for node in self.keepalives.expired(now)
            if self.ledger.hosted_by(node)
        ]
        if self._reliable is None:
            failed = expired
        else:
            # Probe-before-evict: under loss a run of dropped keepalives
            # is indistinguishable from a crash, and evicting a live
            # destination diverges the ledger permanently. First expiry
            # sends a reliable Resync probe instead; the eviction only
            # becomes final when the probe's retry budget gives up (or
            # its grace deadline passes). Any sign of life — Keepalive,
            # probe Receipt, re-confirmation ACK — cancels the probe.
            failed = []
            for node in expired:
                if node in self._probe_failed or self._probes.get(node, float("inf")) <= now:
                    failed.append(node)
                elif node not in self._probes:
                    self._probes[node] = now + self.probe_grace_s
                    self.counters.probes_sent += 1
                    self._send_ctrl(
                        node,
                        Resync(manager_node=self.node_id, timestamp=now),
                        on_give_up=self._on_probe_give_up,
                    )
        if not failed:
            return []
        snapshot = self.nmdb.snapshot(self.engine.now)
        stale = set(self.nmdb.stale_nodes(self.engine.now, self.stale_after_s))
        quarantined = self.quarantined_nodes()
        for dest in failed:
            self.counters.destinations_failed += 1
            if self.on_eviction is not None:
                self.on_eviction(dest)
            # Aggregate per source: the ledger may hold several rows for
            # one (source, dest) pair, and re-homing them separately
            # would duplicate REPs to the same replica.
            evicted_by_source: Dict[int, float] = {}
            for row in self.ledger.evict_destination(dest):
                evicted_by_source[row.source] = (
                    evicted_by_source.get(row.source, 0.0) + row.amount_pct
                )
            evicted = [
                ActiveOffload(
                    source=source,
                    destination=dest,
                    amount_pct=amount,
                    route=(source, dest),
                    established_at=self.engine.now,
                )
                for source, amount in sorted(evicted_by_source.items())
            ]
            self.keepalives.forget(dest)
            self._clear_probe(dest)
            self._persist()
            for offload in evicted:
                # Cancel the source's mapping to the dead destination up
                # front; a replica Redirect (or nothing, if the load
                # returns home) follows below.
                self._send_ctrl(
                    offload.source,
                    Reclaim(
                        source=offload.source,
                        destination=dest,
                        amount_pct=offload.amount_pct,
                    ),
                )
                replica = self.replica_selector.select(
                    self.topology,
                    source=offload.source,
                    amount_pct=offload.amount_pct,
                    data_mb=float(snapshot.data_mb[offload.source]),
                    capacities=snapshot.capacities,
                    policy=self.policy,
                    exclude=[dest, self.node_id, *stale, *quarantined],
                )
                if replica is None:
                    # No replica fits: the up-front Reclaim already
                    # returned the workload home.
                    self.counters.workloads_returned += 1
                    continue
                self.counters.replicas_installed += 1
                route = (offload.source, replica)
                self._pending[(offload.source, replica)] = _PendingRequest(
                    source=offload.source,
                    destination=replica,
                    amount_pct=offload.amount_pct,
                    route=route,
                    via_replica=True,
                    created_at=self.engine.now,
                )
                self._send_ctrl(
                    replica,
                    Rep(
                        replica=replica,
                        failed_destination=dest,
                        source=offload.source,
                        amount_pct=offload.amount_pct,
                        route=route,
                    ),
                    on_give_up=self._on_request_give_up,
                )
        return failed

    # -- forced reconvergence ---------------------------------------------------------------
    def reset_placement(self) -> int:
        """Tear the current placement down and re-place from scratch.

        Every active offload is reclaimed (both endpoints are told),
        the warm-start session and its cached basis are dropped, and an
        immediate optimization round re-solves from the live NMDB. The
        soak drift watchdog invokes this when the incremental placement
        has diverged from the from-scratch oracle past its bound;
        returns the number of ledger rows torn down.
        """
        rows = 0
        for source in list(self.ledger.sources):
            for offload in self.ledger.reclaim(source):
                rows += 1
                reclaim = Reclaim(
                    source=offload.source,
                    destination=offload.destination,
                    amount_pct=offload.amount_pct,
                )
                self._send_ctrl(offload.destination, reclaim)
                self._send_ctrl(offload.source, reclaim)
        self.placement_session.reset()
        if self.distributed_engine is not None:
            self.distributed_engine.reset()
        self.counters.placements_reset += 1
        self._persist()
        return rows

    # -- reclaim --------------------------------------------------------------------------------
    def _maybe_reclaim(self, stat: Stat) -> None:
        """If a source has recovered enough headroom to absorb its own
        offloaded load, return it (hysteresis avoids flapping)."""
        offloaded = self.ledger.offloaded_amount(stat.node_id)
        if offloaded <= 0:
            return
        if stat.capacity_pct + offloaded <= self.policy.c_max - self.reclaim_hysteresis_pct:
            for offload in self.ledger.reclaim(stat.node_id):
                self.counters.reclaims_issued += 1
                reclaim = Reclaim(
                    source=offload.source,
                    destination=offload.destination,
                    amount_pct=offload.amount_pct,
                )
                self._send_ctrl(offload.destination, reclaim)
                self._send_ctrl(offload.source, reclaim)
            self._persist()
