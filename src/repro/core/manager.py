"""DUST-Manager: admission, NMDB upkeep, placement, post-offload care.

The manager is "a decision node [that] defines the most optimized
destination monitoring node by evaluating network resource utilization,
monitoring capabilities, and the number of monitoring agents". This
implementation runs three loops on the discrete-event engine:

* **message handling** — Offload-capable → ACK (announcing the
  Update-Interval Time), STAT → NMDB, Offload-ACK → ledger + Redirect,
  Keepalive → tracker;
* **optimization rounds** — periodically snapshot the NMDB, build the
  Eq. 3 placement problem, solve it with the configured
  :class:`~repro.core.placement.PlacementEngine` (optionally falling
  back to Algorithm 1 when the ILP is infeasible), and send
  Offload-Requests along the chosen controllable routes;
* **keepalive sweeps** — expired destinations are evicted and their
  workloads re-homed onto replicas via REP, or returned to their
  sources via Reclaim when no replica fits.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

import numpy as np

from repro.core.heuristic import solve_heuristic
from repro.core.messages import (
    Ack,
    ControlMessage,
    Keepalive,
    OffloadAck,
    OffloadCapable,
    OffloadRequest,
    Reclaim,
    Redirect,
    Rep,
    Stat,
)
from repro.core.nmdb import NMDB
from repro.core.offload import ActiveOffload, OffloadLedger
from repro.core.placement import (
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
    PlacementSession,
)
from repro.core.postoffload import KeepaliveTracker, ReplicaSelector
from repro.core.thresholds import ThresholdPolicy
from repro.errors import ProtocolError
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import Message, MessageNetwork
from repro.topology.graph import Topology


@dataclass
class ManagerCounters:
    """Observable manager activity, consumed by experiments and tests."""

    acks_sent: int = 0
    stats_received: int = 0
    optimization_rounds: int = 0
    infeasible_rounds: int = 0
    heuristic_fallbacks: int = 0
    offload_requests_sent: int = 0
    offloads_established: int = 0
    offloads_rejected: int = 0
    keepalives_received: int = 0
    destinations_failed: int = 0
    replicas_installed: int = 0
    workloads_returned: int = 0
    reclaims_issued: int = 0


@dataclass(frozen=True)
class _PendingRequest:
    source: int
    destination: int
    amount_pct: float
    route: Tuple[int, ...]
    via_replica: bool = False
    created_at: float = 0.0


class DUSTManager:
    """Cloud-based coordination point of a DUST deployment."""

    def __init__(
        self,
        node_id: int,
        topology: Topology,
        engine: SimulationEngine,
        network: MessageNetwork,
        policy: ThresholdPolicy,
        placement_engine: Optional[PlacementEngine] = None,
        update_interval_s: float = 60.0,
        optimization_period_s: float = 60.0,
        keepalive_timeout_s: float = 30.0,
        max_hops: Optional[int] = None,
        heuristic_fallback: bool = True,
        reclaim_hysteresis_pct: float = 5.0,
        workers: Optional[int] = None,
    ) -> None:
        self.node_id = node_id
        self.topology = topology
        self.engine = engine
        self.network = network
        self.policy = policy
        self.nmdb = NMDB(topology, policy)
        self.placement_engine = placement_engine or PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops),
            workers=workers,
        )
        # Periodic re-solves run through a session so each optimization
        # round warm-starts the LP from the previous round's basis (and
        # keeps hitting the engine's incremental route cache).
        self.placement_session = PlacementSession(engine=self.placement_engine)
        self.workers = workers
        self.update_interval_s = update_interval_s
        self.optimization_period_s = optimization_period_s
        self.keepalive_timeout_s = keepalive_timeout_s
        self.max_hops = max_hops
        self.heuristic_fallback = heuristic_fallback
        self.reclaim_hysteresis_pct = reclaim_hysteresis_pct
        #: A node whose last STAT is older than this is treated as gone.
        self.stale_after_s = 2.5 * update_interval_s

        self.ledger = OffloadLedger()
        self.keepalives = KeepaliveTracker(keepalive_timeout_s)
        self.replica_selector = ReplicaSelector(
            ResponseTimeModel(engine=PathEngine.DP, max_hops=max_hops)
        )
        self.counters = ManagerCounters()
        self.placement_history: List[PlacementReport] = []
        self._pending: Dict[Tuple[int, int], _PendingRequest] = {}
        self._started = False

    # -- lifecycle --------------------------------------------------------------------
    def start(self) -> None:
        """Register on the network and start the periodic loops."""
        if self._started:
            raise ProtocolError("manager already started")
        self._started = True
        self.network.register(self.node_id, self._receive)
        self.engine.schedule_periodic(
            self.optimization_period_s,
            lambda engine: self.run_optimization_round(),
            label="manager-optimize",
        )
        self.engine.schedule_periodic(
            self.keepalive_timeout_s / 2.0,
            lambda engine: self.run_keepalive_sweep(),
            label="manager-keepalive-sweep",
        )

    # -- message plane ------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, OffloadCapable):
            self.nmdb.register_capability(payload)
            self.counters.acks_sent += 1
            self.network.send(
                self.node_id,
                payload.node_id,
                Ack(node_id=payload.node_id, update_interval_s=self.update_interval_s),
            )
        elif isinstance(payload, Stat):
            self.counters.stats_received += 1
            self.nmdb.apply_stat(payload)
            self._maybe_reclaim(payload)
        elif isinstance(payload, OffloadAck):
            self._on_offload_ack(payload)
        elif isinstance(payload, Keepalive):
            self.counters.keepalives_received += 1
            self.keepalives.record(payload.node_id, payload.timestamp)
        elif isinstance(payload, ControlMessage):
            raise ProtocolError(f"manager cannot handle {payload.type.value!r}")
        else:
            raise ProtocolError("manager received non-DUST payload")

    def _on_offload_ack(self, ack: OffloadAck) -> None:
        pending = self._pending.pop((ack.source, ack.destination), None)
        if pending is None:
            raise ProtocolError(
                f"unexpected Offload-ACK for {ack.source}->{ack.destination}"
            )
        if not ack.accepted:
            self.counters.offloads_rejected += 1
            return
        self.counters.offloads_established += 1
        self.ledger.add(
            ActiveOffload(
                source=pending.source,
                destination=pending.destination,
                amount_pct=pending.amount_pct,
                route=pending.route,
                established_at=self.engine.now,
                via_replica=pending.via_replica,
            )
        )
        self.keepalives.watch(pending.destination, self.engine.now)
        # The source is redirected for fresh offloads *and* for replica
        # substitutions — in the latter case its stale mapping to the
        # failed destination was already cancelled during the sweep.
        self.network.send(
            self.node_id,
            pending.source,
            Redirect(
                source=pending.source,
                destination=pending.destination,
                amount_pct=pending.amount_pct,
                route=pending.route,
            ),
        )

    # -- optimization rounds ----------------------------------------------------------------
    def run_optimization_round(self) -> Optional[PlacementReport]:
        """One manager decision cycle; returns the placement report (or
        ``None`` when there was nothing to do)."""
        self.counters.optimization_rounds += 1
        # Expire pending requests whose request or reply was lost (e.g.
        # the endpoint died in flight) so their nodes are not excluded
        # from placement forever.
        deadline = self.engine.now - 2.0 * self.optimization_period_s
        for key in [k for k, p in self._pending.items() if p.created_at < deadline]:
            del self._pending[key]
        snapshot = self.nmdb.snapshot(self.engine.now)
        # Nodes with in-flight requests are skipped this round to avoid
        # double-committing the same excess/space; nodes whose STATs
        # have gone stale (crashed or never admitted) are excluded
        # entirely — their NMDB record no longer reflects reality.
        in_flight_sources = {p.source for p in self._pending.values()}
        in_flight_dests = {p.destination for p in self._pending.values()}
        stale = set(self.nmdb.stale_nodes(self.engine.now, self.stale_after_s))
        busy = [
            b
            for b in snapshot.busy
            if b not in in_flight_sources and b != self.node_id and b not in stale
        ]
        candidates = [
            c
            for c in snapshot.candidates
            if c not in in_flight_dests and c != self.node_id and c not in stale
        ]
        if not busy:
            return None
        problem = PlacementProblem(
            topology=self.topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([self.policy.excess_load(snapshot.capacities[b]) for b in busy]),
            cd=np.array(
                [self.policy.spare_capacity(snapshot.capacities[c]) for c in candidates]
            ),
            data_mb=snapshot.data_mb[busy],
            max_hops=self.max_hops,
        )
        report = self.placement_session.solve(problem)
        self.placement_history.append(report)
        assignments = report.assignments
        if not report.feasible:
            self.counters.infeasible_rounds += 1
            if self.heuristic_fallback:
                # Partial relief beats none: Algorithm 1 places whatever
                # fits one hop away even when Eq. 3 has no full solution.
                self.counters.heuristic_fallbacks += 1
                assignments = solve_heuristic(
                    problem, trmin_engine=self.placement_engine.trmin_engine
                ).assignments
            else:
                return report
        for assignment in assignments:
            route = (
                tuple(assignment.route.nodes)
                if assignment.route is not None
                else (assignment.busy, assignment.candidate)
            )
            request = OffloadRequest(
                destination=assignment.candidate,
                source=assignment.busy,
                amount_pct=assignment.amount_pct,
                data_mb=float(
                    snapshot.data_mb[assignment.busy]
                    * assignment.amount_pct
                    / max(self.policy.excess_load(snapshot.capacities[assignment.busy]), 1e-9)
                ),
                route=route,
            )
            self._pending[(assignment.busy, assignment.candidate)] = _PendingRequest(
                source=assignment.busy,
                destination=assignment.candidate,
                amount_pct=assignment.amount_pct,
                route=route,
                created_at=self.engine.now,
            )
            self.counters.offload_requests_sent += 1
            self.network.send(self.node_id, assignment.candidate, request)
        return report

    # -- keepalive sweeps --------------------------------------------------------------------
    def run_keepalive_sweep(self) -> List[int]:
        """Evict expired destinations, re-home their workloads; returns
        the failed destinations."""
        failed = [
            node
            for node in self.keepalives.expired(self.engine.now)
            if self.ledger.hosted_by(node)
        ]
        if not failed:
            return []
        snapshot = self.nmdb.snapshot(self.engine.now)
        stale = set(self.nmdb.stale_nodes(self.engine.now, self.stale_after_s))
        for dest in failed:
            self.counters.destinations_failed += 1
            # Aggregate per source: the ledger may hold several rows for
            # one (source, dest) pair, and re-homing them separately
            # would duplicate REPs to the same replica.
            evicted_by_source: Dict[int, float] = {}
            for row in self.ledger.evict_destination(dest):
                evicted_by_source[row.source] = (
                    evicted_by_source.get(row.source, 0.0) + row.amount_pct
                )
            evicted = [
                ActiveOffload(
                    source=source,
                    destination=dest,
                    amount_pct=amount,
                    route=(source, dest),
                    established_at=self.engine.now,
                )
                for source, amount in sorted(evicted_by_source.items())
            ]
            self.keepalives.forget(dest)
            for offload in evicted:
                # Cancel the source's mapping to the dead destination up
                # front; a replica Redirect (or nothing, if the load
                # returns home) follows below.
                self.network.send(
                    self.node_id,
                    offload.source,
                    Reclaim(
                        source=offload.source,
                        destination=dest,
                        amount_pct=offload.amount_pct,
                    ),
                )
                replica = self.replica_selector.select(
                    self.topology,
                    source=offload.source,
                    amount_pct=offload.amount_pct,
                    data_mb=float(snapshot.data_mb[offload.source]),
                    capacities=snapshot.capacities,
                    policy=self.policy,
                    exclude=[dest, self.node_id, *stale],
                )
                if replica is None:
                    # No replica fits: the up-front Reclaim already
                    # returned the workload home.
                    self.counters.workloads_returned += 1
                    continue
                self.counters.replicas_installed += 1
                route = (offload.source, replica)
                self._pending[(offload.source, replica)] = _PendingRequest(
                    source=offload.source,
                    destination=replica,
                    amount_pct=offload.amount_pct,
                    route=route,
                    via_replica=True,
                    created_at=self.engine.now,
                )
                self.network.send(
                    self.node_id,
                    replica,
                    Rep(
                        replica=replica,
                        failed_destination=dest,
                        source=offload.source,
                        amount_pct=offload.amount_pct,
                        route=route,
                    ),
                )
        return failed

    # -- reclaim --------------------------------------------------------------------------------
    def _maybe_reclaim(self, stat: Stat) -> None:
        """If a source has recovered enough headroom to absorb its own
        offloaded load, return it (hysteresis avoids flapping)."""
        offloaded = self.ledger.offloaded_amount(stat.node_id)
        if offloaded <= 0:
            return
        if stat.capacity_pct + offloaded <= self.policy.c_max - self.reclaim_hysteresis_pct:
            for offload in self.ledger.reclaim(stat.node_id):
                self.counters.reclaims_issued += 1
                reclaim = Reclaim(
                    source=offload.source,
                    destination=offload.destination,
                    amount_pct=offload.amount_pct,
                )
                self.network.send(self.node_id, offload.destination, reclaim)
                self.network.send(self.node_id, offload.source, reclaim)
