"""Node roles and role assignment (paper Section III-B).

DUST-Manager assigns each client one of four roles from its reported
capacity and participation flag:

* **Busy** — utilized capacity ≥ ``C_max``; must offload its excess.
* **Offload-candidate** — utilized capacity ≤ ``CO_max``; may host.
* **None-offloading** — opted out via Offload-capable = 0; it is still
  monitored but neither offloads nor hosts.
* **Neutral** — participating but between the thresholds: neither busy
  enough to offload nor idle enough to host (such nodes act only as
  relays, at the paper's assumed zero relay cost).

**Offload-destination** is not a capacity class but an *assignment
outcome*: a candidate that the optimizer actually selected. It is
tracked separately (see :mod:`repro.core.offload`).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Sequence

import numpy as np

from repro.core.thresholds import ThresholdPolicy


class NodeRole(enum.Enum):
    """Capacity-derived role of a DUST client."""

    BUSY = "busy"
    OFFLOAD_CANDIDATE = "offload-candidate"
    NEUTRAL = "neutral"
    NONE_OFFLOADING = "none-offloading"


def classify_node(
    capacity_pct: float, policy: ThresholdPolicy, participating: bool = True
) -> NodeRole:
    """Role of a single node under ``policy``."""
    if not participating:
        return NodeRole.NONE_OFFLOADING
    if policy.is_busy(capacity_pct):
        return NodeRole.BUSY
    if policy.is_candidate(capacity_pct):
        return NodeRole.OFFLOAD_CANDIDATE
    return NodeRole.NEUTRAL


@dataclass(frozen=True)
class RoleAssignment:
    """Roles for a whole network state."""

    roles: Dict[int, NodeRole]

    def nodes_with(self, role: NodeRole) -> List[int]:
        """Node ids holding ``role``, in ascending order."""
        return sorted(n for n, r in self.roles.items() if r is role)

    @property
    def busy(self) -> List[int]:
        """The paper's ``V_b``."""
        return self.nodes_with(NodeRole.BUSY)

    @property
    def candidates(self) -> List[int]:
        """The paper's ``V_o``."""
        return self.nodes_with(NodeRole.OFFLOAD_CANDIDATE)

    @property
    def relays(self) -> List[int]:
        return self.nodes_with(NodeRole.NEUTRAL)

    @property
    def opted_out(self) -> List[int]:
        return self.nodes_with(NodeRole.NONE_OFFLOADING)

    def counts(self) -> Dict[NodeRole, int]:
        out = {role: 0 for role in NodeRole}
        for role in self.roles.values():
            out[role] += 1
        return out


def classify_network(
    capacities: Sequence[float],
    policy: ThresholdPolicy,
    participating: Sequence[bool] | None = None,
) -> RoleAssignment:
    """Classify every node; ``capacities[i]`` is node ``i``'s utilized
    capacity in percent. ``participating`` defaults to all-True."""
    caps = np.asarray(capacities, dtype=float)
    if participating is None:
        part = np.ones(caps.size, dtype=bool)
    else:
        part = np.asarray(participating, dtype=bool)
        if part.shape != caps.shape:
            raise ValueError(
                f"participation mask shape {part.shape} does not match "
                f"capacities shape {caps.shape}"
            )
    # Vectorized classify_node with the same precedence: opted-out
    # first, then busy (>= C_max), then candidate (<= CO_max).
    codes = np.where(
        ~part,
        3,
        np.where(caps >= policy.c_max, 0, np.where(caps <= policy.co_max, 1, 2)),
    )
    by_code = (
        NodeRole.BUSY,
        NodeRole.OFFLOAD_CANDIDATE,
        NodeRole.NEUTRAL,
        NodeRole.NONE_OFFLOADING,
    )
    roles = {node_id: by_code[c] for node_id, c in enumerate(codes.tolist())}
    return RoleAssignment(roles=roles)
