"""Network Monitoring DataBase (NMDB) — the DUST-Manager's state store.

Per the paper, NMDB keeps "the current network status and utilization
(e.g., network topologies, link utilization) and nodes' monitoring and
offloading capabilities (e.g., resource utilization, number of
user-defined monitoring requests, offloading capabilities and
variables)". The optimization engine reads a consistent
:class:`NetworkSnapshot` out of it.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.messages import OffloadCapable, Stat
from repro.core.roles import NodeRole, RoleAssignment, classify_network
from repro.core.thresholds import ThresholdPolicy
from repro.errors import ProtocolError
from repro.topology.graph import Topology


@dataclass(frozen=True)
class NodeRecord:
    """Latest known state of one client node."""

    node_id: int
    capable: bool = True
    capacity_pct: float = 0.0
    data_mb: float = 0.0
    num_agents: int = 0
    c_max: Optional[float] = None  # client-announced override
    co_max: Optional[float] = None
    last_stat_time: float = float("-inf")


@dataclass(frozen=True)
class NetworkSnapshot:
    """Consistent placement input assembled from NMDB state."""

    capacities: np.ndarray  # percent, indexed by node id
    data_mb: np.ndarray  # D_i per node
    participating: np.ndarray  # bool mask
    roles: RoleAssignment
    policy: ThresholdPolicy
    timestamp: float

    @property
    def busy(self) -> List[int]:
        return self.roles.busy

    @property
    def candidates(self) -> List[int]:
        return self.roles.candidates

    def excess_loads(self) -> np.ndarray:
        """``Cs_i`` for each busy node, ordered like :attr:`busy`."""
        return np.array([self.policy.excess_load(self.capacities[i]) for i in self.busy])

    def spare_capacities(self) -> np.ndarray:
        """``Cd_j`` for each candidate, ordered like :attr:`candidates`."""
        return np.array(
            [self.policy.spare_capacity(self.capacities[j]) for j in self.candidates]
        )


class NMDB:
    """Mutable manager-side store fed by Offload-capable and STAT
    messages; also owns the topology reference."""

    def __init__(self, topology: Topology, policy: ThresholdPolicy) -> None:
        self.topology = topology
        self.policy = policy
        self._records: Dict[int, NodeRecord] = {
            node.node_id: NodeRecord(node_id=node.node_id) for node in topology.nodes
        }

    # -- ingestion -----------------------------------------------------------------
    def register_capability(self, msg: OffloadCapable) -> None:
        """Apply an Offload-capable declaration."""
        rec = self._record(msg.node_id)
        self._records[msg.node_id] = replace(
            rec, capable=msg.capable, c_max=msg.c_max, co_max=msg.co_max
        )

    def apply_stat(self, msg: Stat, strict: bool = True) -> bool:
        """Apply a STAT report; returns ``True`` if it was applied.

        Out-of-order reports raise in ``strict`` mode (a reliable fabric
        should never reorder) and are silently dropped otherwise — under
        loss/reordering the newest report simply wins.
        """
        rec = self._record(msg.node_id)
        if msg.timestamp < rec.last_stat_time:
            if strict:
                raise ProtocolError(
                    f"out-of-order STAT from node {msg.node_id}: "
                    f"{msg.timestamp} < {rec.last_stat_time}"
                )
            return False
        self._records[msg.node_id] = replace(
            rec,
            capacity_pct=msg.capacity_pct,
            data_mb=msg.data_mb,
            num_agents=msg.num_agents,
            last_stat_time=msg.timestamp,
        )
        return True

    def set_capacity(self, node_id: int, capacity_pct: float) -> None:
        """Direct capacity write (used by simulators that bypass the
        message plane)."""
        rec = self._record(node_id)
        self._records[node_id] = replace(rec, capacity_pct=capacity_pct)

    def bulk_set_capacities(self, capacities: np.ndarray, data_mb: Optional[np.ndarray] = None) -> None:
        """Set every node's capacity (and optionally D_i) at once."""
        caps = np.asarray(capacities, dtype=float)
        if caps.size != self.topology.num_nodes:
            raise ProtocolError(
                f"expected {self.topology.num_nodes} capacities, got {caps.size}"
            )
        if data_mb is not None:
            data = np.asarray(data_mb, dtype=float)
            if data.shape != caps.shape:
                raise ProtocolError("data_mb shape must match capacities")
        for node_id in range(caps.size):
            rec = self._record(node_id)
            self._records[node_id] = replace(
                rec,
                capacity_pct=float(caps[node_id]),
                data_mb=float(data[node_id]) if data_mb is not None else rec.data_mb,
            )

    # -- reads -----------------------------------------------------------------------
    def _record(self, node_id: int) -> NodeRecord:
        try:
            return self._records[node_id]
        except KeyError:
            raise ProtocolError(f"unknown node {node_id} in NMDB") from None

    def record(self, node_id: int) -> NodeRecord:
        """Public read of one node's record."""
        return self._record(node_id)

    @property
    def num_nodes(self) -> int:
        return self.topology.num_nodes

    def stale_nodes(self, now: float, max_age_s: float) -> List[int]:
        """Nodes whose last STAT is older than ``max_age_s``."""
        return [
            nid
            for nid, rec in self._records.items()
            if now - rec.last_stat_time > max_age_s
        ]

    def export_records(self) -> Dict[int, NodeRecord]:
        """Copy of the record table (records are frozen, safe to share)
        — the NMDB part of a manager snapshot."""
        return dict(self._records)

    def load_records(self, records: Dict[int, NodeRecord]) -> None:
        """Adopt persisted records (failover restore); nodes absent from
        the snapshot keep their blank defaults."""
        for node_id, rec in records.items():
            self._record(node_id)  # validate the id exists
            self._records[node_id] = rec

    def snapshot(self, now: float = 0.0) -> NetworkSnapshot:
        """Assemble the placement input from current records."""
        n = self.topology.num_nodes
        caps = np.zeros(n)
        data = np.zeros(n)
        part = np.zeros(n, dtype=bool)
        for node_id in range(n):
            rec = self._records[node_id]
            caps[node_id] = rec.capacity_pct
            data[node_id] = rec.data_mb
            part[node_id] = rec.capable
        roles = classify_network(caps, self.policy, part)
        return NetworkSnapshot(
            capacities=caps,
            data_mb=data,
            participating=part,
            roles=roles,
            policy=self.policy,
            timestamp=now,
        )
