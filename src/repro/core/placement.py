"""Optimal monitoring placement — the paper's Eq. 3 program.

Given Busy nodes ``V_b`` with excess loads ``Cs_i`` and candidates
``V_o`` with spare capacities ``Cd_j``, minimize

    β = Σ_i Σ_j  x_ij · Trmin_ij

subject to Σ_i x_ij ≤ Cd_j (3a), Σ_j x_ij = Cs_i (3b), x ≥ 0 —
where ``Trmin_ij`` is the minimum response time over all hop-bounded
paths (Eq. 2). The solve decomposes exactly as the paper's simulator
does:

1. **route pricing** — compute the ``Trmin`` matrix with the configured
   :class:`~repro.routing.response_time.ResponseTimeModel` (exhaustive
   enumeration by default: this step, not the LP, dominates the
   measured computation time and produces the max-hop blowup of
   Figs. 8/10);
2. **LP solve** — by default the exact transportation solver
   (:mod:`repro.lp.transportation`); ``scipy`` (HiGHS, the Gurobi
   stand-in) and the from-scratch ``simplex`` are selectable.

Pairs with no path within ``max_hops`` get no shipping lane; if the
remaining lanes cannot absorb all excess load, the solution status is
``INFEASIBLE`` — the *Infeasible Optimization* event counted by Fig. 7.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.nmdb import NetworkSnapshot
from repro.errors import PlacementError
from repro.lp import (
    LinearProgram,
    SimplexBasis,
    SolveStatus,
    TransportationBasis,
    TransportationProblem,
    lp_sum,
    solve_branch_and_bound,
    solve_scipy,
    solve_simplex,
    solve_transportation,
)
from repro.obs import get_registry, trace_span
from repro.routing.engine import TrminEngine
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.routing.routes import Path
from repro.topology.graph import Topology

#: Flows below this are dropped from the assignment list (numerical dust).
_FLOW_TOL = 1e-9


@dataclass(frozen=True)
class _LpExtra:
    """Warm-start bookkeeping riding along with one LP dispatch."""

    basis: object = None
    warm_started: bool = False
    iterations: int = 0


@dataclass(frozen=True)
class PlacementProblem:
    """One placement instance, fully specified.

    ``cs[a]`` / ``data_mb[a]`` belong to ``busy[a]``; ``cd[b]`` belongs
    to ``candidates[b]``. Capacities are in percentage points of node
    capacity (the paper's homogeneity assumption makes points
    transferable 1:1); ``data_mb`` is the exported volume ``D_i``.
    """

    topology: Topology
    busy: Tuple[int, ...]
    candidates: Tuple[int, ...]
    cs: np.ndarray
    cd: np.ndarray
    data_mb: np.ndarray
    max_hops: Optional[int] = None
    #: Heterogeneity coefficients ``h_ij``: one percentage point
    #: released at busy node ``i`` consumes ``h_ij`` points at candidate
    #: ``j`` (the paper's "coefficient factor relating two endpoint
    #: platform capacities"). ``None`` means homogeneous (all ones).
    capacity_coefficients: Optional[np.ndarray] = None
    #: When ``True``, offload amounts are restricted to whole units
    #: (whole monitor agents rather than fractional capacity) — the
    #: integral-ILP variant, solved by branch and bound.
    integral: bool = False

    def __post_init__(self) -> None:
        cs = np.asarray(self.cs, dtype=float)
        cd = np.asarray(self.cd, dtype=float)
        data = np.asarray(self.data_mb, dtype=float)
        object.__setattr__(self, "cs", cs)
        object.__setattr__(self, "cd", cd)
        object.__setattr__(self, "data_mb", data)
        if cs.shape != (len(self.busy),):
            raise PlacementError(
                f"cs has shape {cs.shape}, expected ({len(self.busy)},)"
            )
        if data.shape != (len(self.busy),):
            raise PlacementError(
                f"data_mb has shape {data.shape}, expected ({len(self.busy)},)"
            )
        if cd.shape != (len(self.candidates),):
            raise PlacementError(
                f"cd has shape {cd.shape}, expected ({len(self.candidates)},)"
            )
        if (cs < 0).any() or (cd < 0).any() or (data < 0).any():
            raise PlacementError("cs, cd and data_mb must be non-negative")
        overlap = set(self.busy) & set(self.candidates)
        if overlap:
            raise PlacementError(
                f"nodes {sorted(overlap)} appear as both busy and candidate"
            )
        if self.capacity_coefficients is not None:
            coeff = np.asarray(self.capacity_coefficients, dtype=float)
            object.__setattr__(self, "capacity_coefficients", coeff)
            if coeff.shape != (len(self.busy), len(self.candidates)):
                raise PlacementError(
                    f"capacity_coefficients shape {coeff.shape} must be "
                    f"({len(self.busy)}, {len(self.candidates)})"
                )
            if (coeff <= 0).any():
                raise PlacementError("capacity coefficients must be positive")
        if self.integral:
            if not np.allclose(cs, np.round(cs)):
                raise PlacementError(
                    "integral placement requires integer excess loads "
                    "(whole monitor-agent units)"
                )
        for node in (*self.busy, *self.candidates):
            self.topology.node(node)  # validates existence

    @property
    def is_homogeneous(self) -> bool:
        """True when the paper's 1:1 capacity-transfer assumption holds."""
        return self.capacity_coefficients is None

    @property
    def total_excess(self) -> float:
        """Total load to offload, ``Cs = Σ Cs_i``."""
        return float(self.cs.sum())

    @property
    def total_spare(self) -> float:
        """Total available capacity, ``Cd = Σ Cd_j``."""
        return float(self.cd.sum())

    @classmethod
    def from_snapshot(
        cls,
        topology: Topology,
        snapshot: NetworkSnapshot,
        max_hops: Optional[int] = None,
    ) -> "PlacementProblem":
        """Build the instance the manager would solve for a snapshot."""
        busy = tuple(snapshot.busy)
        candidates = tuple(snapshot.candidates)
        return cls(
            topology=topology,
            busy=busy,
            candidates=candidates,
            cs=snapshot.excess_loads(),
            cd=snapshot.spare_capacities(),
            data_mb=snapshot.data_mb[list(busy)] if busy else np.zeros(0),
            max_hops=max_hops,
        )


@dataclass(frozen=True)
class PlacementAssignment:
    """One flow: offload ``amount_pct`` from ``busy`` to ``candidate``."""

    busy: int
    candidate: int
    amount_pct: float
    response_time_s: float  # Trmin for this pair (full D_i transfer)
    hops: int
    route: Optional[Path] = None


@dataclass(frozen=True)
class PlacementReport:
    """Outcome of one placement solve."""

    status: SolveStatus
    objective_beta: float
    assignments: Tuple[PlacementAssignment, ...]
    trmin_seconds: float
    lp_seconds: float
    total_seconds: float
    lp_backend: str
    path_engine: PathEngine
    max_hops: Optional[int]
    total_excess: float
    total_spare: float
    #: Shadow price of each candidate's spare capacity (candidate node
    #: id -> dual of its 3a row), populated when the scipy backend
    #: solved the LP: beta falls by |dual| per extra capacity point.
    capacity_duals: Dict[int, float] = field(default_factory=dict)
    #: Warm-start handle for the next same-shaped solve: the
    #: transportation backend's final basis tree, or the simplex
    #: backend's :class:`~repro.lp.simplex.SimplexBasis`. ``None`` when
    #: the backend has nothing reusable (scipy, infeasible, no LP run).
    lp_basis: object = None
    #: True when the LP actually started from a supplied warm basis
    #: (a rejected/repaired-to-cold hint reports False).
    lp_warm_started: bool = False
    #: Pivot count of the LP solve (MODI or simplex iterations) — the
    #: quantity warm starts shrink; 0 for scipy and trivial solves.
    lp_iterations: int = 0

    @property
    def feasible(self) -> bool:
        return self.status.is_optimal

    @property
    def total_offloaded(self) -> float:
        return float(sum(a.amount_pct for a in self.assignments))

    def flows_from(self, busy: int) -> List[PlacementAssignment]:
        return [a for a in self.assignments if a.busy == busy]

    def flows_to(self, candidate: int) -> List[PlacementAssignment]:
        return [a for a in self.assignments if a.candidate == candidate]

    def destinations(self) -> List[int]:
        """Selected Offload-destination nodes."""
        return sorted({a.candidate for a in self.assignments})


class PlacementEngine:
    """The DUST-Manager's Optimization Engine.

    Parameters
    ----------
    response_model:
        Trmin computation configuration; defaults to the faithful
        exhaustive-enumeration engine with the problem's ``max_hops``.
    lp_backend:
        ``"transportation"`` (default, exact network simplex),
        ``"scipy"`` (HiGHS) or ``"simplex"`` (from-scratch tableau).
    with_routes:
        Materialize the chosen :class:`~repro.routing.routes.Path` per
        assignment (the controllable-route output). Slightly more work;
        disable for pure timing studies.
    trmin_engine:
        Route-pricing engine the Trmin matrix is computed through
        (parallel fan-out + versioned incremental cache). ``None``
        builds one from ``workers``.
    workers:
        Worker count for the default engine; ``None`` defers to
        ``REPRO_WORKERS`` / CPU count.
    """

    def __init__(
        self,
        response_model: Optional[ResponseTimeModel] = None,
        lp_backend: str = "transportation",
        with_routes: bool = True,
        trmin_engine: Optional[TrminEngine] = None,
        workers: Optional[int] = None,
    ) -> None:
        if lp_backend not in ("transportation", "scipy", "simplex"):
            raise PlacementError(
                f"unknown lp_backend {lp_backend!r}; expected "
                "'transportation', 'scipy' or 'simplex'"
            )
        self.response_model = response_model
        self.lp_backend = lp_backend
        self.with_routes = with_routes
        self.workers = workers
        self.trmin_engine = trmin_engine or TrminEngine(workers=workers)

    # -- internals -----------------------------------------------------------------
    def _model_for(self, problem: PlacementProblem) -> ResponseTimeModel:
        if self.response_model is not None:
            model = self.response_model
            if model.max_hops != problem.max_hops and problem.max_hops is not None:
                model = ResponseTimeModel(
                    convention=model.convention,
                    engine=model.engine,
                    max_hops=problem.max_hops,
                )
            return model
        return ResponseTimeModel(
            engine=PathEngine.ENUMERATION, max_hops=problem.max_hops
        )

    def _solve_lp(
        self,
        cost: np.ndarray,
        cs: np.ndarray,
        cd: np.ndarray,
        coeff: Optional[np.ndarray] = None,
        integral: bool = False,
        warm_start: object = None,
    ) -> Tuple[SolveStatus, np.ndarray, float, Dict[int, float], "_LpExtra"]:
        """Dispatch the placement LP; returns (status, flow, beta, duals,
        extra) where ``extra`` carries the warm-start bookkeeping.

        The specialized transportation backend handles the paper's
        homogeneous continuous case; heterogeneous coefficients or
        integral variables force the general LP/MILP path (with the
        ``transportation`` backend transparently upgraded to scipy).
        ``warm_start`` is the previous same-shaped solve's basis: a
        :class:`~repro.lp.transportation.TransportationBasis` for the
        transportation path, a :class:`~repro.lp.simplex.SimplexBasis`
        for the from-scratch simplex. Mismatched hints are ignored by
        the solvers, so passing a stale one is always safe.
        """
        m, n = cost.shape
        general_needed = coeff is not None or integral
        if self.lp_backend == "transportation" and not general_needed:
            result = solve_transportation(
                TransportationProblem(cs, cd, cost),
                warm_start=warm_start if isinstance(warm_start, TransportationBasis) else None,
            )
            extra = _LpExtra(
                basis=result.basis,
                warm_started=result.warm_started,
                iterations=result.iterations,
            )
            return result.status, result.flow, result.objective, {}, extra
        lp = LinearProgram("dust-placement")
        variables: Dict[Tuple[int, int], object] = {}
        for i in range(m):
            for j in range(n):
                if np.isfinite(cost[i, j]):
                    variables[(i, j)] = lp.add_variable(
                        f"x_{i}_{j}", is_integer=integral
                    )
        for i in range(m):
            row = [variables[(i, j)] for j in range(n) if (i, j) in variables]
            if not row:
                if cs[i] > _FLOW_TOL:
                    return SolveStatus.INFEASIBLE, np.zeros((m, n)), float("nan"), {}
                continue
            lp.add_constraint(lp_sum(row) == float(cs[i]), name=f"supply_{i}")
        for j in range(n):
            col = [
                (1.0 if coeff is None else float(coeff[i, j])) * variables[(i, j)]
                for i in range(m)
                if (i, j) in variables
            ]
            if col:
                lp.add_constraint(lp_sum(col) <= float(cd[j]), name=f"capacity_{j}")
        lp.set_objective(
            lp_sum(cost[i, j] * var for (i, j), var in variables.items())
        )
        if integral:
            # scipy dispatches to HiGHS MILP; the from-scratch route is
            # branch-and-bound over the simplex (which warm-starts its
            # own child relaxations internally).
            if self.lp_backend in ("scipy", "transportation"):
                solution = solve_scipy(lp)
            else:
                solution = solve_branch_and_bound(lp)
        elif self.lp_backend in ("scipy", "transportation"):
            solution = solve_scipy(lp)
        else:
            solution = solve_simplex(
                lp,
                warm_start=warm_start if isinstance(warm_start, SimplexBasis) else None,
            )
        flow = np.zeros((m, n))
        if solution.status.is_optimal:
            for (i, j), var in variables.items():
                flow[i, j] = solution.value(f"x_{i}_{j}")
        duals = {
            int(name.split("_", 1)[1]): value
            for name, value in solution.duals.items()
            if name.startswith("capacity_")
        }
        extra = _LpExtra(
            basis=solution.basis,
            warm_started=solution.warm_started,
            iterations=solution.iterations,
        )
        return solution.status, flow, solution.objective, duals, extra

    # -- public API ---------------------------------------------------------------------
    def solve(
        self, problem: PlacementProblem, warm_start: object = None
    ) -> PlacementReport:
        """Solve one placement instance to optimality (or infeasibility).

        Parameters
        ----------
        problem : PlacementProblem
            Busy/candidate sets, loads, capacities and routing limits.
        warm_start : object, optional
            The ``lp_basis`` of a previous report for the same
            busy/candidate sets (usually supplied by a
            :class:`PlacementSession` rather than by hand). The optimum
            is identical either way; only the pivot count changes.

        Returns
        -------
        PlacementReport
            Status, objective β, assignments and per-phase timings.
            Each solve also reports into the ``placement.*`` metrics
            and (when tracing is on) records a ``placement.solve`` span
            with nested ``placement.trmin`` / ``placement.lp`` phases.
        """
        with trace_span(
            "placement.solve",
            busy=len(problem.busy),
            candidates=len(problem.candidates),
            backend=self.lp_backend,
        ):
            report = self._solve_impl(problem, warm_start)
        registry = get_registry()
        registry.counter("placement.solves").inc()
        if report.status is SolveStatus.INFEASIBLE:
            registry.counter("placement.infeasible").inc()
        registry.histogram("placement.trmin_seconds").observe(report.trmin_seconds)
        registry.histogram("placement.lp_seconds").observe(report.lp_seconds)
        registry.histogram("placement.total_seconds").observe(report.total_seconds)
        return report

    def _solve_impl(
        self, problem: PlacementProblem, warm_start: object = None
    ) -> PlacementReport:
        start = time.perf_counter()
        model = self._model_for(problem)
        m, n = len(problem.busy), len(problem.candidates)

        if m == 0:
            # No busy node: trivially optimal, nothing to place.
            return PlacementReport(
                status=SolveStatus.OPTIMAL,
                objective_beta=0.0,
                assignments=(),
                trmin_seconds=0.0,
                lp_seconds=0.0,
                total_seconds=time.perf_counter() - start,
                lp_backend=self.lp_backend,
                path_engine=model.engine,
                max_hops=problem.max_hops,
                total_excess=0.0,
                total_spare=problem.total_spare,
            )

        t0 = time.perf_counter()
        with trace_span("placement.trmin"):
            if n:
                trmin, hops, paths = self.trmin_engine.trmin_matrix(
                    problem.topology,
                    list(problem.busy),
                    list(problem.candidates),
                    problem.data_mb,
                    with_paths=self.with_routes,
                    model=model,
                )
            else:
                trmin = np.zeros((m, 0))
                hops = np.zeros((m, 0), dtype=int)
                paths = {}
        trmin_seconds = time.perf_counter() - t0

        t1 = time.perf_counter()
        duals_by_index: Dict[int, float] = {}
        extra = _LpExtra()
        with trace_span("placement.lp"):
            if n == 0:
                status, flow, beta = (
                    SolveStatus.INFEASIBLE,
                    np.zeros((m, 0)),
                    float("nan"),
                )
            else:
                status, flow, beta, duals_by_index, extra = self._solve_lp(
                    trmin,
                    problem.cs,
                    problem.cd,
                    coeff=problem.capacity_coefficients,
                    integral=problem.integral,
                    warm_start=warm_start,
                )
        lp_seconds = time.perf_counter() - t1

        assignments: List[PlacementAssignment] = []
        if status.is_optimal:
            for a in range(m):
                for b in range(n):
                    amount = float(flow[a, b])
                    if amount <= _FLOW_TOL:
                        continue
                    src, dst = problem.busy[a], problem.candidates[b]
                    assignments.append(
                        PlacementAssignment(
                            busy=src,
                            candidate=dst,
                            amount_pct=amount,
                            response_time_s=float(trmin[a, b]),
                            hops=int(hops[a, b]),
                            route=paths.get((src, dst)),
                        )
                    )

        return PlacementReport(
            status=status,
            objective_beta=float(beta) if status.is_optimal else float("nan"),
            assignments=tuple(assignments),
            trmin_seconds=trmin_seconds,
            lp_seconds=lp_seconds,
            total_seconds=time.perf_counter() - start,
            lp_backend=self.lp_backend,
            path_engine=model.engine,
            max_hops=problem.max_hops,
            total_excess=problem.total_excess,
            total_spare=problem.total_spare,
            capacity_duals={
                int(problem.candidates[j]): float(v)
                for j, v in duals_by_index.items()
            },
            lp_basis=extra.basis,
            lp_warm_started=extra.warm_started,
            lp_iterations=extra.iterations,
        )


class PlacementSession:
    """Stateful solve loop: route cache + LP warm basis, kept together.

    PR 1's :class:`~repro.routing.engine.TrminEngine` already makes the
    *pricing* step incremental across successive solves; this session
    adds the matching reuse for the *LP* step, holding the last optimal
    basis and feeding it back whenever the next problem has the same
    busy/candidate sets (so the basis shape and lane structure match).
    A perturbation of utilizations or capacities between re-solves —
    the manager's periodic cycle, a sweep iteration — then pays only
    for what actually changed: dirty routes are re-priced through the
    engine's cache, and the LP re-converges from the previous tree in a
    handful of pivots instead of a cold Vogel start.

    Warm starts are **skipped** (the solve is simply cold) when the
    busy/candidate sets differ from the previous solve, when the LP
    runs on the scipy backend (HiGHS keeps no basis across calls), or
    for integral problems (branch-and-bound warm-starts internally but
    has no single reusable final basis). Feasibility and optima are
    never affected — a stale basis is repaired or discarded inside the
    solver.
    """

    def __init__(
        self, engine: Optional[PlacementEngine] = None, **engine_kwargs: object
    ) -> None:
        self.engine = engine or PlacementEngine(**engine_kwargs)  # type: ignore[arg-type]
        self._last_key: Optional[Tuple] = None
        self._last_basis: object = None
        #: Solves where a warm basis was offered to the LP.
        self.warm_attempts = 0
        #: Solves where the LP actually started from that basis.
        self.warm_hits = 0

    @property
    def trmin_engine(self) -> TrminEngine:
        return self.engine.trmin_engine

    def _key(self, problem: PlacementProblem) -> Tuple:
        return (
            problem.busy,
            problem.candidates,
            problem.max_hops,
            problem.integral,
            problem.is_homogeneous,
            self.engine.lp_backend,
        )

    def solve(self, problem: PlacementProblem) -> PlacementReport:
        """Solve, warm-starting from the previous compatible basis.

        Parameters
        ----------
        problem : PlacementProblem
            The instance to solve. When its busy/candidate sets match
            the previous solve's, the remembered LP basis is offered as
            a warm start.

        Returns
        -------
        PlacementReport
            Same contract as :meth:`PlacementEngine.solve`;
            ``lp_warm_started`` tells whether the basis was used.
            Warm-start attempts and hits are also published as
            ``placement.warm_attempts`` / ``placement.warm_hits``.
        """
        registry = get_registry()
        key = self._key(problem)
        warm = self._last_basis if key == self._last_key else None
        if warm is not None:
            self.warm_attempts += 1
            registry.counter("placement.warm_attempts").inc()
        report = self.engine.solve(problem, warm_start=warm)
        if report.lp_warm_started:
            self.warm_hits += 1
            registry.counter("placement.warm_hits").inc()
        if report.status.is_optimal and report.lp_basis is not None:
            self._last_key = key
            self._last_basis = report.lp_basis
        else:
            # Don't let a failed solve leave a misleading handle behind.
            self._last_key = None
            self._last_basis = None
        return report

    def reset(self) -> None:
        """Drop the remembered basis (route cache is unaffected)."""
        self._last_key = None
        self._last_basis = None
