"""QoS degradation ladder: graceful load-shedding under control-plane overload.

Long soak runs push open-loop event streams into the manager faster
than it can always re-place; rather than letting the ingress queue grow
without bound (or thrashing the solver), the control plane descends an
explicit ladder of degradations, cheapest first:

``NORMAL`` → ``SHED_LOW`` (drop lowest-QoS-tier re-placement events) →
``WIDEN`` (multiply the re-solve interval) → ``FREEZE`` (stop
re-solving entirely and serve the stale placement).

The ladder is a pure, deterministic state machine over the ingress
queue's fill fraction: escalation happens as soon as fill crosses a
level's threshold; de-escalation steps down one level at a time and
only after fill has dropped ``recover_margin`` *below* the current
level's threshold (hysteresis, so a queue hovering at a boundary does
not flap). Every transition is recorded — the soak result reports the
full trajectory — and mirrored into the ``soak.ladder_level`` gauge and
``soak.ladder_transitions`` counter.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import List, Tuple

from repro.errors import SimulationError
from repro.obs import get_registry, trace_event


class DegradationLevel(enum.IntEnum):
    """Ladder rungs, in escalation order."""

    NORMAL = 0
    SHED_LOW = 1
    WIDEN = 2
    FREEZE = 3


@dataclass(frozen=True)
class LadderConfig:
    """Thresholds (ingress-queue fill fractions) and knobs of the ladder."""

    shed_low_at: float = 0.5
    widen_at: float = 0.75
    freeze_at: float = 0.92
    recover_margin: float = 0.15
    #: Multiplier applied to the base re-solve interval per rung at or
    #: above ``WIDEN`` (one rung → ×widen_factor, FREEZE keeps it too).
    widen_factor: float = 2.0

    def __post_init__(self) -> None:
        thresholds = (self.shed_low_at, self.widen_at, self.freeze_at)
        if not all(0.0 < t <= 1.0 for t in thresholds):
            raise SimulationError("ladder thresholds must be in (0, 1]")
        if not self.shed_low_at < self.widen_at < self.freeze_at:
            raise SimulationError("ladder thresholds must be strictly increasing")
        if not 0.0 < self.recover_margin < self.shed_low_at:
            raise SimulationError("recover_margin must be in (0, shed_low_at)")
        if self.widen_factor < 1.0:
            raise SimulationError("widen_factor must be >= 1")

    def threshold(self, level: DegradationLevel) -> float:
        """Fill fraction at which ``level`` engages (0 for NORMAL)."""
        return {
            DegradationLevel.NORMAL: 0.0,
            DegradationLevel.SHED_LOW: self.shed_low_at,
            DegradationLevel.WIDEN: self.widen_at,
            DegradationLevel.FREEZE: self.freeze_at,
        }[level]


#: One recorded transition: (time, from-level, to-level, fill fraction).
LadderTransition = Tuple[float, DegradationLevel, DegradationLevel, float]


class DegradationLadder:
    """The ladder's live state: current level plus transition history."""

    def __init__(self, config: LadderConfig = LadderConfig()) -> None:
        self.config = config
        self.level = DegradationLevel.NORMAL
        self.max_level = DegradationLevel.NORMAL
        self.transitions: List[LadderTransition] = []

    def update(self, fill: float, now: float) -> DegradationLevel:
        """Advance the state machine for the observed queue ``fill``
        (fraction of capacity, may exceed 1 under overflow); returns
        the level in force afterwards."""
        target = self.level
        # Escalate straight to the highest rung the fill justifies.
        for level in (
            DegradationLevel.FREEZE,
            DegradationLevel.WIDEN,
            DegradationLevel.SHED_LOW,
        ):
            if fill >= self.config.threshold(level):
                if level > target:
                    target = level
                break
        # De-escalate one rung at a time, with hysteresis.
        if (
            target == self.level
            and self.level > DegradationLevel.NORMAL
            and fill <= self.config.threshold(self.level) - self.config.recover_margin
        ):
            target = DegradationLevel(self.level - 1)
        if target != self.level:
            self.transitions.append((now, self.level, target, fill))
            registry = get_registry()
            registry.counter("soak.ladder_transitions").inc()
            registry.gauge("soak.ladder_level").set(int(target))
            trace_event(
                "soak.ladder", frm=int(self.level), to=int(target), fill=round(fill, 3)
            )
            self.level = target
            if target > self.max_level:
                self.max_level = target
        return self.level

    # -- policy the current level implies -------------------------------------
    @property
    def shedding_low_tier(self) -> bool:
        """Lowest-tier re-placement events are dropped at admission."""
        return self.level >= DegradationLevel.SHED_LOW

    @property
    def frozen(self) -> bool:
        """Placement is frozen; the stale assignment keeps serving."""
        return self.level >= DegradationLevel.FREEZE

    def resolve_period(self, base_period_s: float) -> float:
        """Re-solve interval in force: widened geometrically per rung
        at or above ``WIDEN``."""
        rungs = max(0, int(self.level) - int(DegradationLevel.WIDEN) + 1)
        return base_period_s * self.config.widen_factor**rungs
