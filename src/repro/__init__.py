"""DUST reproduction: resource-aware telemetry offloading (IPPS 2024).

A full Python implementation of the DUST system — in-device telemetry
substrate, distributed control plane (DUST-Manager / DUST-Client), the
Eq.-3 min-cost placement optimization with controllable routing, and
the one-hop heuristic (Algorithm 1) — plus the simulators and testbed
emulation needed to regenerate every figure in the paper's evaluation.

Quick start::

    from repro import build_fat_tree, ThresholdPolicy, PlacementEngine
    from repro.core import PlacementProblem

See ``examples/quickstart.py`` for a complete walk-through.
"""

from __future__ import annotations

from repro._version import __version__
from repro.core import (
    DUSTClient,
    DUSTManager,
    HeuristicReport,
    NMDB,
    PlacementEngine,
    PlacementProblem,
    PlacementReport,
    ThresholdPolicy,
    solve_heuristic,
    solve_heuristic_reference,
)
from repro.errors import ReproError
from repro.routing import PathEngine, ResponseTimeModel
from repro.simulation import MessageNetwork, SimulationEngine
from repro.topology import (
    BandwidthConvention,
    CapacityModel,
    Link,
    LinkUtilizationModel,
    NodeKind,
    Topology,
    build_fat_tree,
)

__all__ = [
    "BandwidthConvention",
    "CapacityModel",
    "DUSTClient",
    "DUSTManager",
    "HeuristicReport",
    "Link",
    "LinkUtilizationModel",
    "MessageNetwork",
    "NMDB",
    "NodeKind",
    "PathEngine",
    "PlacementEngine",
    "PlacementProblem",
    "PlacementReport",
    "ReproError",
    "ResponseTimeModel",
    "SimulationEngine",
    "ThresholdPolicy",
    "Topology",
    "__version__",
    "build_fat_tree",
    "solve_heuristic",
    "solve_heuristic_reference",
]
