"""Exception hierarchy for the DUST reproduction.

Every error raised by :mod:`repro` derives from :class:`ReproError` so
callers can catch library failures with a single ``except`` clause while
still being able to distinguish the failing subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` library."""


class TopologyError(ReproError):
    """Raised for malformed or unsupported network topologies."""


class RoutingError(ReproError):
    """Raised when a route cannot be computed (e.g. disconnected pair)."""


class SolverError(ReproError):
    """Raised when an LP/ILP backend fails for a non-status reason."""


class InfeasibleProblemError(SolverError):
    """Raised when a caller demands a solution to an infeasible program.

    Solvers normally *report* infeasibility through
    :class:`repro.lp.result.SolveStatus`; this exception is reserved for
    APIs documented to raise instead (``require_optimal=True`` paths).
    """


class UnboundedProblemError(SolverError):
    """Raised when the objective is unbounded below on the feasible set."""


class TelemetryError(ReproError):
    """Raised for telemetry substrate misuse (unknown agent, table, ...)."""


class SimulationError(ReproError):
    """Raised by the discrete-event engine (time travel, double-start...)."""


class ProtocolError(ReproError):
    """Raised when a DUST protocol message violates the expected workflow."""


class PlacementError(ReproError):
    """Raised when a placement request is malformed (e.g. unknown node)."""


class CapacityError(ReproError):
    """Raised when capacities or thresholds are outside their domains."""
