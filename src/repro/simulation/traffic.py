"""Network-wide traffic models: link loads and VxLAN-style flows.

Two consumers:

* the placement experiments need *dynamic link utilizations* (the
  ``Lu_{i,j}`` of Eq. 1) that change per iteration — provided by
  :class:`GravityTrafficMatrix`, which routes a gravity-model demand
  matrix over shortest hop paths and converts per-link carried load
  into utilization;
* the testbed emulation needs *flow-level churn* — provided by
  :class:`VxlanFlowSet` in :mod:`repro.testbed.vxlan` (which builds on
  the primitives here).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.routing.shortest import hop_constrained_shortest
from repro.topology.graph import Topology


@dataclass
class GravityTrafficMatrix:
    """Random gravity-model traffic: node masses ~ LogNormal, demand
    between i and j proportional to ``mass_i * mass_j``.

    ``apply`` routes every demand on a min-hop path and sets each
    link's utilization to carried/capacity (clipped to ``max_util``),
    producing correlated, topology-aware link loads rather than i.i.d.
    draws — closer to what a DC fabric under VxLAN overlay looks like.
    """

    total_demand_mbps: float
    sigma: float = 0.8
    max_util: float = 0.95
    seed: Optional[int] = None
    _rng: np.random.Generator = field(init=False, repr=False)

    def __post_init__(self) -> None:
        if self.total_demand_mbps < 0:
            raise SimulationError("total demand must be non-negative")
        if not 0.0 < self.max_util <= 1.0:
            raise SimulationError("max_util must be in (0, 1]")
        self._rng = np.random.default_rng(self.seed)

    def sample_demands(self, num_nodes: int, num_pairs: int) -> List[Tuple[int, int, float]]:
        """Draw ``num_pairs`` (src, dst, mbps) demands."""
        if num_nodes < 2:
            raise SimulationError("need at least two nodes for traffic")
        masses = self._rng.lognormal(mean=0.0, sigma=self.sigma, size=num_nodes)
        srcs = self._rng.integers(0, num_nodes, size=num_pairs)
        dsts = self._rng.integers(0, num_nodes, size=num_pairs)
        keep = srcs != dsts
        srcs, dsts = srcs[keep], dsts[keep]
        weights = masses[srcs] * masses[dsts]
        if weights.sum() == 0:
            return []
        volumes = self.total_demand_mbps * weights / weights.sum()
        return [(int(s), int(d), float(v)) for s, d, v in zip(srcs, dsts, volumes)]

    def apply(self, topology: Topology, num_pairs: Optional[int] = None) -> np.ndarray:
        """Route fresh demands and set link utilizations; returns the
        per-link carried load in Mbps."""
        n = topology.num_nodes
        m = topology.num_edges
        if num_pairs is None:
            num_pairs = max(2 * n, 8)
        carried = np.zeros(m)
        unit = np.ones(m)  # hop-count weights: min-hop routing
        demands = self.sample_demands(n, num_pairs)
        by_source: Dict[int, List[Tuple[int, float]]] = {}
        for s, d, v in demands:
            by_source.setdefault(s, []).append((d, v))
        for s, dest_list in by_source.items():
            result = hop_constrained_shortest(topology, s, None, unit)
            for d, v in dest_list:
                path = result.path_to(d)
                if path is None:
                    continue
                for e in path.edges:
                    carried[e] += v
        topology.set_link_utilizations(
            [
                min(carried[edge_id] / link.capacity_mbps, self.max_util)
                for edge_id, link in enumerate(topology.links)
            ]
        )
        return carried
