"""Deterministic chaos harness: message faults × node churn × failover.

Composes the pieces this package already has — a :class:`FaultyNetwork`
fault model, :class:`FailureInjector` node/link churn, the hardened
manager/client protocol, and manager failover — into seeded, replayable
scenarios. A :class:`ChaosScenario` fully determines a run: same
scenario + same seed ⇒ identical fault event log, identical checkpoint
signatures, identical final ledger (the determinism test relies on
this, so no wall-clock or global randomness may enter here).

The harness answers three questions the unit layers cannot:

* **convergence** — does a lossy run end at the same placement as the
  fault-free run of the same scenario (``evaluate_scenario``)?
* **recovery** — after a disruption (manager crash, churn burst), how
  long until the ledger matches the reference again, for good?
* **cost** — how many extra control messages did the faults and the
  retransmission machinery cost, and did monitoring traffic ever
  displace production traffic (strict-priority QoS audit)?
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.client import DUSTClient
from repro.core.failover import SnapshotStore, StandbyManager
from repro.core.manager import DUSTManager, ManagerCounters
from repro.core.messages import RetryPolicy
from repro.core.metrics import (
    AssignmentSignature,
    assignment_signature,
    message_overhead_pct,
    placement_divergence,
    recovery_time_s,
)
from repro.core.postoffload import QoSClass, StrictPriorityQueue
from repro.core.thresholds import ThresholdPolicy
from repro.errors import SimulationError
from repro.obs import CLIENT_MIRROR, get_registry, mirror_counters, trace_span
from repro.simulation.engine import SimulationEngine
from repro.simulation.failures import FailureEvent, FailureInjector, LinkFailureEvent
from repro.simulation.network_sim import FaultConfig, FaultLogEntry, FaultyNetwork
from repro.topology.fattree import build_fat_tree
from repro.topology.graph import Topology
from repro.topology.links import BandwidthConvention, LinkUtilizationModel


@dataclass(frozen=True)
class ChaosScenario:
    """One fully-specified chaos run (a pure function of its fields)."""

    seed: int = 0
    pods: int = 4  # fat-tree k
    horizon_s: float = 3600.0
    manager_node: int = 0
    standby_node: Optional[int] = 1  # None disables failover machinery
    hot_nodes: Tuple[int, ...] = (5, 9, 14)
    hot_capacity_pct: float = 92.0
    cool_capacity_range: Tuple[float, float] = (15.0, 42.0)
    faults: FaultConfig = field(default_factory=FaultConfig)
    manager_crash_at: Optional[float] = None
    node_events: Tuple[FailureEvent, ...] = ()
    link_events: Tuple[LinkFailureEvent, ...] = ()
    checkpoint_period_s: float = 120.0
    retry_policy: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(base_timeout_s=2.0, max_retries=5)
    )
    policy: ThresholdPolicy = field(
        default_factory=lambda: ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    )
    update_interval_s: float = 30.0
    optimization_period_s: float = 60.0
    keepalive_timeout_s: float = 45.0
    keepalive_period_s: float = 10.0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise SimulationError("scenario horizon must be positive")
        if self.checkpoint_period_s <= 0:
            raise SimulationError("checkpoint period must be positive")
        if self.standby_node == self.manager_node:
            raise SimulationError("standby and manager must be different nodes")
        if self.manager_crash_at is not None:
            if not 0.0 < self.manager_crash_at < self.horizon_s:
                raise SimulationError("manager crash must fall inside the horizon")
            if self.standby_node is None:
                raise SimulationError("a manager crash needs a standby to recover")
        reserved = {self.manager_node, self.standby_node}
        if reserved & set(self.hot_nodes):
            raise SimulationError("hot nodes cannot include manager/standby nodes")

    def reference(self) -> "ChaosScenario":
        """The fault-free twin: same wiring and seeds, zero faults."""
        return replace(
            self,
            faults=FaultConfig(),
            manager_crash_at=None,
            node_events=(),
            link_events=(),
        )

    @property
    def disruption_time(self) -> float:
        """Earliest disruptive instant (for recovery-time accounting):
        the manager crash when there is one, else the first scheduled
        churn event, else t=0 (faults act from the start)."""
        times = [e.time for e in self.node_events]
        times += [e.time for e in self.link_events]
        if self.manager_crash_at is not None:
            times.append(self.manager_crash_at)
        return min(times) if times else 0.0


def default_scenario(seed: int = 0) -> ChaosScenario:
    """The acceptance scenario: 10% drop, duplication + reordering, one
    mid-run manager crash recovered by the standby."""
    return ChaosScenario(
        seed=seed,
        faults=FaultConfig(
            drop_probability=0.10,
            duplicate_probability=0.05,
            jitter_s=0.25,
            reorder_probability=0.10,
        ),
        manager_crash_at=1800.0,
    )


@dataclass(frozen=True)
class QoSAuditResult:
    """Strict-priority transmission audit over the active offloads."""

    offloads_audited: int
    production_loss_mb: float
    monitoring_delivered_mb: float
    monitoring_dropped_mb: float


@dataclass
class ChaosRunResult:
    """Everything a chaos run produced, metrics first."""

    scenario: ChaosScenario
    signature: AssignmentSignature
    checkpoints: Tuple[Tuple[float, AssignmentSignature], ...]
    counters: ManagerCounters
    messages_sent: int
    messages_delivered: int
    messages_dropped: int
    faults_dropped: int
    duplicates_injected: int
    client_retransmissions: int
    client_duplicates_ignored: int
    took_over_at: Optional[float]
    qos: QoSAuditResult
    event_log: Tuple[FaultLogEntry, ...]
    # Live objects, for tests that want to poke the post-run state.
    manager: DUSTManager = field(repr=False)
    standby: Optional[StandbyManager] = field(repr=False)
    clients: Dict[int, DUSTClient] = field(repr=False)
    engine: SimulationEngine = field(repr=False)
    network: FaultyNetwork = field(repr=False)

    def active_manager(self) -> DUSTManager:
        """The manager currently driving the control plane (the standby's
        promoted instance after a failover)."""
        if self.standby is not None and self.standby.manager is not None:
            return self.standby.manager
        return self.manager


def production_loss_audit(
    manager: DUSTManager,
    topology: Topology,
    clients: Dict[int, DUSTClient],
    interval_s: float = 1.0,
) -> QoSAuditResult:
    """Replay each active offload's data over its route's bottleneck
    link under strict-priority scheduling.

    Production traffic is the link's measured data-plane load
    (``utilization × capacity``); monitoring offload data rides in the
    lowest class, so any production-class loss would mean the QoS
    pinning is broken — the acceptance criterion requires exactly zero.
    """
    production_loss = 0.0
    monitoring_delivered = 0.0
    monitoring_dropped = 0.0
    audited = 0
    for offload in manager.ledger.active:
        route = offload.route or (offload.source, offload.destination)
        links = []
        for u, v in zip(route[:-1], route[1:]):
            try:
                links.append(topology.link_between(u, v))
            except Exception:
                continue  # resync-reconstructed routes may elide hops
        if not links:
            continue
        bottleneck = min(links, key=lambda l: l.effective_mbps(BandwidthConvention.AVAILABLE))
        capacity_mb = bottleneck.capacity_mbps * interval_s / 8.0
        production_mb = bottleneck.utilized_mbps * interval_s / 8.0
        client = clients.get(offload.source)
        data_mb = (client.data_mb if client is not None else 10.0) * (
            offload.amount_pct / 100.0
        )
        outcome = StrictPriorityQueue(capacity_mb).transmit(
            {
                QoSClass.PRODUCTION: production_mb,
                QoSClass.MONITORING_OFFLOAD: data_mb,
            }
        )
        production_loss += outcome.production_loss_mb
        monitoring_delivered += outcome.delivered(QoSClass.MONITORING_OFFLOAD)
        monitoring_dropped += outcome.dropped(QoSClass.MONITORING_OFFLOAD)
        audited += 1
    return QoSAuditResult(
        offloads_audited=audited,
        production_loss_mb=production_loss,
        monitoring_delivered_mb=monitoring_delivered,
        monitoring_dropped_mb=monitoring_dropped,
    )


def run_scenario(scenario: ChaosScenario) -> ChaosRunResult:
    """Execute one scenario on a fresh engine; fully deterministic.

    Each run increments ``chaos.runs``, times itself into
    ``chaos.run_seconds`` and, at the end, publishes the network's and
    clients' cumulative counters into the ``network.*`` / ``client.*``
    metrics. With tracing on, the whole run nests under one
    ``chaos.run`` span.
    """
    start = time.perf_counter()
    with trace_span(
        "chaos.run", seed=scenario.seed, faulty=not scenario.faults.is_null
    ):
        result = _run_scenario_impl(scenario)
    registry = get_registry()
    registry.counter("chaos.runs").inc()
    registry.histogram("chaos.run_seconds").observe(time.perf_counter() - start)
    result.network.publish_metrics()
    for client in result.clients.values():
        mirror_counters(client, CLIENT_MIRROR)
    return result


def _run_scenario_impl(scenario: ChaosScenario) -> ChaosRunResult:
    topology = build_fat_tree(scenario.pods)
    LinkUtilizationModel(0.2, 0.7, seed=scenario.seed).apply(topology)
    engine = SimulationEngine()
    network = FaultyNetwork(
        topology, engine, faults=scenario.faults, seed=scenario.seed
    )
    store = SnapshotStore() if scenario.standby_node is not None else None
    manager = DUSTManager(
        node_id=scenario.manager_node,
        topology=topology,
        engine=engine,
        network=network,
        policy=scenario.policy,
        update_interval_s=scenario.update_interval_s,
        optimization_period_s=scenario.optimization_period_s,
        keepalive_timeout_s=scenario.keepalive_timeout_s,
        retry_policy=scenario.retry_policy,
        snapshot_store=store,
        standby_node=scenario.standby_node,
        heartbeat_period_s=scenario.keepalive_period_s,
    )
    manager.start()
    standby: Optional[StandbyManager] = None
    if scenario.standby_node is not None:
        standby = StandbyManager(
            node_id=scenario.standby_node,
            topology=topology,
            engine=engine,
            network=network,
            policy=scenario.policy,
            snapshot_store=store,
            primary_node=scenario.manager_node,
            takeover_silence_s=3.0 * scenario.keepalive_period_s,
            check_period_s=scenario.keepalive_period_s,
            manager_kwargs=dict(
                update_interval_s=scenario.update_interval_s,
                optimization_period_s=scenario.optimization_period_s,
                keepalive_timeout_s=scenario.keepalive_timeout_s,
                retry_policy=scenario.retry_policy,
            ),
        )
        standby.start()
    reserved = {scenario.manager_node, scenario.standby_node}
    rng = np.random.default_rng(scenario.seed)
    clients: Dict[int, DUSTClient] = {}
    for node in range(topology.num_nodes):
        if node in reserved:
            continue
        low, high = scenario.cool_capacity_range
        base = (
            scenario.hot_capacity_pct
            if node in scenario.hot_nodes
            else float(rng.uniform(low, high))
        )
        client = DUSTClient(
            node_id=node,
            engine=engine,
            network=network,
            manager_node=scenario.manager_node,
            policy=scenario.policy,
            base_capacity=base,
            keepalive_period_s=scenario.keepalive_period_s,
            retry_policy=scenario.retry_policy,
        )
        client.start()
        clients[node] = client
    injector = FailureInjector(engine, clients, topology=topology)
    if scenario.node_events:
        injector.schedule(scenario.node_events)
    if scenario.link_events:
        injector.schedule_links(scenario.link_events)
    if scenario.manager_crash_at is not None:
        engine.schedule_at(
            scenario.manager_crash_at,
            lambda _engine: manager.crash() if manager.alive else None,
            label="chaos-manager-crash",
        )

    def active() -> DUSTManager:
        if standby is not None and standby.manager is not None:
            return standby.manager
        return manager

    checkpoints: List[Tuple[float, AssignmentSignature]] = []
    t = scenario.checkpoint_period_s
    while t < scenario.horizon_s:
        engine.run_until(t)
        checkpoints.append((t, assignment_signature(active().ledger.active)))
        t += scenario.checkpoint_period_s
    engine.run_until(scenario.horizon_s)
    current = active()
    signature = assignment_signature(current.ledger.active)
    checkpoints.append((scenario.horizon_s, signature))
    counters = current.refresh_transport_counters()
    qos = production_loss_audit(current, topology, clients)
    return ChaosRunResult(
        scenario=scenario,
        signature=signature,
        checkpoints=tuple(checkpoints),
        counters=counters,
        messages_sent=network.messages_sent,
        messages_delivered=network.messages_delivered,
        messages_dropped=network.messages_dropped,
        faults_dropped=network.faults_dropped,
        duplicates_injected=network.duplicates_injected,
        client_retransmissions=sum(c.retransmissions for c in clients.values()),
        client_duplicates_ignored=sum(
            c.duplicates_ignored for c in clients.values()
        ),
        took_over_at=standby.took_over_at if standby is not None else None,
        qos=qos,
        event_log=tuple(network.event_log),
        manager=manager,
        standby=standby,
        clients=clients,
        engine=engine,
        network=network,
    )


@dataclass(frozen=True)
class ScenarioComparison:
    """Lossy run measured against its fault-free twin."""

    converged: bool
    divergence: float
    recovery_s: Optional[float]
    overhead_pct: float
    faulty: ChaosRunResult = field(repr=False, compare=False)
    reference: ChaosRunResult = field(repr=False, compare=False)


def evaluate_scenario(scenario: ChaosScenario) -> ScenarioComparison:
    """Run the scenario and its fault-free reference twin; compare.

    Parameters
    ----------
    scenario : ChaosScenario
        The lossy scenario to evaluate. Its fault-free twin
        (``scenario.reference()``) is run on the same seed so the two
        runs differ only by injected faults.

    Returns
    -------
    ScenarioComparison
        ``converged`` (identical final assignment signatures),
        placement ``divergence``, ``recovery_s`` after the disruption
        and message ``overhead_pct``; the full faulty and reference
        :class:`ChaosRunResult` objects ride along. Each evaluation
        also increments the ``chaos.scenarios_evaluated`` metric.
    """
    with trace_span("chaos.evaluate", seed=scenario.seed):
        faulty = run_scenario(scenario)
        reference = run_scenario(scenario.reference())
    get_registry().counter("chaos.scenarios_evaluated").inc()
    divergence = placement_divergence(reference.signature, faulty.signature)
    recovery = recovery_time_s(
        faulty.checkpoints, reference.signature, scenario.disruption_time
    )
    overhead = message_overhead_pct(faulty.messages_sent, reference.messages_sent)
    return ScenarioComparison(
        converged=faulty.signature == reference.signature,
        divergence=divergence,
        recovery_s=recovery,
        overhead_pct=overhead,
        faulty=faulty,
        reference=reference,
    )
