"""Networked distributed placement solve over the simulated fabric.

:func:`repro.lp.distributed.solve_distributed` runs the zone/coordinator
protocol with direct in-process calls. This module runs the *same*
protocol objects over a :class:`~repro.simulation.network_sim.MessageNetwork`
(or its fault-injecting :class:`~repro.simulation.network_sim.FaultyNetwork`
subclass): the coordinator and every zone manager live at real topology
nodes, every :class:`~repro.lp.distributed.PriceUpdate` /
:class:`~repro.lp.distributed.LaneBids` exchange pays control-plane
latency, and messages can be dropped, duplicated, reordered or
partitioned away.

The protocol survives all of that by construction:

* every message carries its **epoch**, the coordinator discards stale
  or duplicate bids, and zone endpoints answer a re-delivered request
  with the *identical* cached reply — so duplication and reordering
  are no-ops;
* the coordinator owns all **retransmission**: any request it has not
  seen answered within ``retry_timeout_s`` is re-sent on a periodic
  tick. A lossy link therefore degrades to extra retransmissions and a
  longer (simulated) solve — never to a wrong answer. A partition
  simply stalls the affected epoch until it heals;
* termination requires every zone's explicit
  :class:`~repro.lp.distributed.FlowAssignment` acknowledgement, so no
  zone is left with a stale placement.

The full message state machine is specified in
``docs/distributed_solve.md``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.lp.distributed import (
    DistributedCoordinator,
    DistributedSolveResult,
    FlowAssignment,
    LaneBids,
    PriceUpdate,
    ZoneProfile,
    ZoneWorker,
    extract_zone_subproblems,
)
from repro.lp.result import SolveStatus
from repro.lp.transportation import TransportationProblem
from repro.obs import get_registry
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import Message, MessageNetwork

__all__ = [
    "AssignmentAck",
    "NetworkedDistributedSolve",
    "ProfileRequest",
    "solve_over_network",
]


@dataclass(frozen=True)
class ProfileRequest:
    """Coordinator → zone: (re-)request the zone's :class:`ZoneProfile`.

    Attributes
    ----------
    epoch : int
        Always ``-1`` — profiling precedes the first price epoch, and
        the reply is idempotent, so no epoch discrimination is needed.
    """

    epoch: int = -1


@dataclass(frozen=True)
class AssignmentAck:
    """Zone → coordinator: final :class:`FlowAssignment` landed.

    Attributes
    ----------
    zone_id : int
        The acknowledging zone.
    epoch : int
        Echo of the assignment's epoch; the coordinator finishes only
        after every zone's ack arrives.
    """

    zone_id: int
    epoch: int


class _ZoneEndpoint:
    """One zone manager's network presence: a stateless responder.

    Every handler is idempotent — the first ``ProfileRequest`` runs the
    (expensive) local presolve and caches the profile message; pricing
    answers are cached per epoch; a re-delivered request of any kind is
    answered with the identical cached reply. That idempotency is what
    lets the coordinator retransmit freely under loss.
    """

    def __init__(
        self,
        node_id: int,
        coordinator_node: int,
        worker: ZoneWorker,
        network: MessageNetwork,
    ) -> None:
        self.node_id = node_id
        self.coordinator_node = coordinator_node
        self.worker = worker
        self.network = network
        self._profile: Optional[ZoneProfile] = None
        self._bids_epoch = -1
        self._bids: Optional[LaneBids] = None

    def receive(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, ProfileRequest):
            if self._profile is None:
                self._profile = self.worker.profile()
            reply = self._profile
        elif isinstance(payload, PriceUpdate):
            if payload.epoch != self._bids_epoch or self._bids is None:
                self._bids = self.worker.price(payload)
                self._bids_epoch = payload.epoch
            reply = self._bids
        elif isinstance(payload, FlowAssignment):
            self.worker.accept(payload)  # idempotent: same terminal state
            reply = AssignmentAck(zone_id=self.worker.zone_id, epoch=payload.epoch)
        else:
            raise SimulationError(
                f"zone endpoint {self.node_id}: unexpected payload "
                f"{type(payload).__name__}"
            )
        self.network.send(self.node_id, self.coordinator_node, reply)


class NetworkedDistributedSolve:
    """Drive one distributed solve over a (possibly faulty) network.

    Wires a :class:`~repro.lp.distributed.DistributedCoordinator` at
    ``coordinator_node`` and one :class:`_ZoneEndpoint` per zone onto
    the message network, then advances through the protocol phases —
    ``profile`` → ``rounds`` → ``assign`` → done — purely off received
    messages plus a periodic retransmission tick. Run the simulation
    engine (``engine.run()`` or ``run_until``) after :meth:`start`;
    :attr:`finished` flips when every zone acknowledged its final
    assignment, after which :meth:`result` is available.

    Parameters
    ----------
    engine : SimulationEngine
        The discrete-event clock shared with the network.
    network : MessageNetwork
        Message fabric; pass a
        :class:`~repro.simulation.network_sim.FaultyNetwork` to solve
        under loss/partitions.
    coordinator_node : int
        Topology node hosting the coordinator.
    zone_nodes : mapping of int to int
        ``zone_id -> topology node`` hosting that zone's manager. Must
        be distinct from each other and from ``coordinator_node``.
    workers : sequence of ZoneWorker
        The zone subproblems (see
        :func:`~repro.lp.distributed.extract_zone_subproblems`).
    price_rule, gap_tol, max_rounds, max_bids
        Coordinator knobs, as on
        :func:`~repro.lp.distributed.solve_distributed`.
    retry_timeout_s : float
        Retransmission period for unanswered requests (simulated
        seconds).
    deadline_s : float, optional
        Give up (status ``ITERATION_LIMIT``) if the solve has not
        finished after this much simulated time — e.g. a partition
        that never heals. ``None`` waits forever.
    """

    def __init__(
        self,
        engine: SimulationEngine,
        network: MessageNetwork,
        coordinator_node: int,
        zone_nodes: Mapping[int, int],
        workers: Sequence[ZoneWorker],
        price_rule: str = "block",
        gap_tol: Optional[float] = None,
        max_rounds: int = 10_000,
        max_bids: int = 16,
        retry_timeout_s: float = 0.5,
        deadline_s: Optional[float] = None,
    ) -> None:
        self.engine = engine
        self.network = network
        self.coordinator_node = coordinator_node
        self.zone_nodes = dict(zone_nodes)
        nodes = list(self.zone_nodes.values()) + [coordinator_node]
        if len(set(nodes)) != len(nodes):
            raise SimulationError(
                "coordinator and zone manager nodes must be distinct"
            )
        missing = {w.zone_id for w in workers} - set(self.zone_nodes)
        if missing:
            raise SimulationError(f"zones {sorted(missing)} have no host node")
        self.coordinator = DistributedCoordinator(
            price_rule=price_rule,
            gap_tol=gap_tol,
            max_rounds=max_rounds,
            max_bids=max_bids,
        )
        self.retry_timeout_s = retry_timeout_s
        self.deadline_s = deadline_s
        self.workers = list(workers)
        self._endpoints: Dict[int, _ZoneEndpoint] = {}
        for worker in self.workers:
            node = self.zone_nodes[worker.zone_id]
            endpoint = _ZoneEndpoint(node, coordinator_node, worker, network)
            self._endpoints[worker.zone_id] = endpoint
            network.register(node, endpoint.receive)
        network.register(coordinator_node, self._receive)

        self.phase = "idle"  # idle -> profile -> rounds -> assign -> done
        self.finished = False
        self.gave_up = False
        self.messages_sent = 0
        self.retransmissions = 0
        self._profiled: Set[int] = set()
        self._answered: Set[int] = set()
        self._acked: Set[int] = set()
        self._updates: Dict[int, PriceUpdate] = {}
        self._assignments: Dict[int, FlowAssignment] = {}
        self._started_at = 0.0
        self._epoch_opened_at = 0.0

    # -- outbound ------------------------------------------------------------------
    def _send(self, zone_id: int, payload: object, retransmit: bool = False) -> None:
        self.messages_sent += 1
        if retransmit:
            self.retransmissions += 1
        self.network.send(self.coordinator_node, self.zone_nodes[zone_id], payload)

    def start(self) -> None:
        """Open the profile phase and arm the retransmission tick."""
        if self.phase != "idle":
            raise SimulationError("solve already started")
        self.phase = "profile"
        self._started_at = self.engine.now
        for zone_id in self.zone_nodes:
            self._send(zone_id, ProfileRequest())
        self.engine.schedule_periodic(
            self.retry_timeout_s,
            lambda _engine: self._tick(),
            label="dsolve retransmit",
            condition=lambda: not self.finished,
        )

    def _tick(self) -> None:
        """Retransmit whatever the current phase is still waiting on."""
        if self.finished:
            return
        if (
            self.deadline_s is not None
            and self.engine.now - self._started_at > self.deadline_s
        ):
            self.gave_up = True
            self.finished = True
            return
        if self.phase == "profile":
            for zone_id in self.zone_nodes:
                if zone_id not in self._profiled:
                    self._send(zone_id, ProfileRequest(), retransmit=True)
        elif self.phase == "rounds":
            for zone_id, update in self._updates.items():
                if zone_id not in self._answered:
                    self._send(zone_id, update, retransmit=True)
        elif self.phase == "assign":
            for zone_id, assignment in self._assignments.items():
                if zone_id not in self._acked:
                    self._send(zone_id, assignment, retransmit=True)

    # -- inbound -------------------------------------------------------------------
    def _receive(self, message: Message) -> None:
        payload = message.payload
        if isinstance(payload, ZoneProfile):
            if self.phase != "profile" or payload.zone_id in self._profiled:
                return  # late duplicate
            self.coordinator.register(payload)
            self._profiled.add(payload.zone_id)
            if self._profiled == set(self.zone_nodes):
                self.coordinator.initialize()
                if self.coordinator.converged:
                    self._begin_assign()
                else:
                    self._open_epoch()
        elif isinstance(payload, LaneBids):
            if self.phase != "rounds" or not self.coordinator.submit(payload):
                return  # stale epoch or duplicate
            self._answered.add(payload.zone_id)
            if self.coordinator.epoch_complete:
                get_registry().histogram("dsolve.round_trip_seconds").observe(
                    self.engine.now - self._epoch_opened_at
                )
                if self.coordinator.step():
                    self._open_epoch()
                else:
                    self._begin_assign()
        elif isinstance(payload, AssignmentAck):
            if self.phase != "assign":
                return
            self._acked.add(payload.zone_id)
            if self._acked == set(self.zone_nodes):
                self.phase = "done"
                self.finished = True
        else:
            raise SimulationError(
                f"coordinator: unexpected payload {type(payload).__name__}"
            )

    def _open_epoch(self) -> None:
        self.phase = "rounds"
        self._answered = set()
        self._updates = self.coordinator.price_updates()
        self._epoch_opened_at = self.engine.now
        for zone_id, update in self._updates.items():
            self._send(zone_id, update)

    def _begin_assign(self) -> None:
        self.phase = "assign"
        self._assignments = self.coordinator.assignments()
        for zone_id, assignment in self._assignments.items():
            self._send(zone_id, assignment)

    # -- result --------------------------------------------------------------------
    def result(self) -> DistributedSolveResult:
        """The converged solve (or the give-up marker), with transport
        statistics folded in. Publishes the ``dsolve.*`` transport
        metrics. Only valid once :attr:`finished` is True."""
        if not self.finished:
            raise SimulationError("solve still in flight; run the engine further")
        registry = get_registry()
        registry.counter("dsolve.retransmissions").inc(self.retransmissions)
        registry.counter("dsolve.messages").inc(self.messages_sent)
        zone_seconds = {w.zone_id: w.seconds for w in self.workers}
        slowest = max(zone_seconds.values()) if zone_seconds else 0.0
        if self.gave_up:
            m = sum(len(w.rows) for w in self.workers)
            n = max((w.cost_rows.shape[1] for w in self.workers), default=0)
            status: SolveStatus = SolveStatus.ITERATION_LIMIT
            flow = np.zeros((m, n))
            objective = float("nan")
        else:
            status, flow, objective = self.coordinator.result()
        registry.counter("dsolve.solves").inc()
        registry.counter("dsolve.rounds").inc(self.coordinator.rounds)
        registry.counter("dsolve.pivots").inc(self.coordinator.pivots)
        registry.counter("dsolve.bids").inc(self.coordinator.bids_received)
        if np.isfinite(self.coordinator.gap):
            registry.gauge("dsolve.last_gap").set(self.coordinator.gap)
        registry.histogram("dsolve.solve_seconds").observe(
            self.coordinator.seconds + sum(zone_seconds.values())
        )
        return DistributedSolveResult(
            status=status,
            flow=flow,
            objective=objective,
            gap=self.coordinator.gap,
            rounds=self.coordinator.rounds,
            pivots=self.coordinator.pivots,
            bids_received=self.coordinator.bids_received,
            zone_count=len(self.workers),
            messages=self.messages_sent,
            presolve_warm_hits=sum(
                1 for w in self.workers if getattr(w, "_warm", None) is not None
            ),
            coordinator_seconds=self.coordinator.seconds,
            zone_seconds=zone_seconds,
            critical_path_seconds=self.coordinator.seconds + slowest,
        )


def solve_over_network(
    problem: TransportationProblem,
    zone_rows: Sequence[Sequence[int]],
    zone_cols: Sequence[Sequence[int]],
    network: MessageNetwork,
    engine: SimulationEngine,
    coordinator_node: int,
    zone_nodes: Mapping[int, int],
    max_sim_seconds: float = 3_600.0,
    **knobs: object,
) -> Tuple[DistributedSolveResult, "NetworkedDistributedSolve"]:
    """One-call networked solve: wire, run the engine, return the result.

    Convenience wrapper used by tests and docs: builds the zone
    workers, starts a :class:`NetworkedDistributedSolve`, and advances
    the simulation until the protocol finishes (or ``max_sim_seconds``
    of virtual time elapse — the driver's own ``deadline_s`` knob can
    end it earlier with an ``ITERATION_LIMIT`` result).

    Parameters
    ----------
    problem : TransportationProblem
        Global instance to solve.
    zone_rows, zone_cols : sequence of sequences of int
        Row/column ownership per zone.
    network, engine, coordinator_node, zone_nodes
        As on :class:`NetworkedDistributedSolve`.
    max_sim_seconds : float
        Upper bound on simulated time to run the engine.
    **knobs
        Forwarded to :class:`NetworkedDistributedSolve` (``price_rule``,
        ``gap_tol``, ``retry_timeout_s``, ``deadline_s``, ...).

    Returns
    -------
    (DistributedSolveResult, NetworkedDistributedSolve)
        The solve outcome and the driver (for transport statistics).

    Raises
    ------
    SimulationError
        If the protocol is still unfinished after ``max_sim_seconds``
        of virtual time (e.g. an unhealed partition and no
        ``deadline_s``).
    """
    workers = extract_zone_subproblems(problem, zone_rows, zone_cols)
    driver = NetworkedDistributedSolve(
        engine,
        network,
        coordinator_node,
        zone_nodes,
        workers,
        **knobs,  # type: ignore[arg-type]
    )
    driver.start()
    engine.run_until(engine.now + max_sim_seconds)
    if not driver.finished:
        raise SimulationError(
            f"distributed solve still unfinished after {max_sim_seconds}s "
            "of simulated time (unhealed partition?)"
        )
    return driver.result(), driver
