"""Event types for the discrete-event engine."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional

#: An event handler receives the engine so it can schedule follow-ups.
Handler = Callable[["object"], None]


@dataclass(order=True)
class ScheduledEvent:
    """Heap entry: ordered by (time, sequence) for deterministic ties.

    ``sequence`` is a monotonically increasing insertion counter, so two
    events at the same timestamp fire in scheduling order — this makes
    whole simulations reproducible from a seed.
    """

    time: float
    sequence: int
    handler: Handler = field(compare=False)
    label: str = field(default="", compare=False)
    cancelled: bool = field(default=False, compare=False)

    def cancel(self) -> None:
        """Mark the event so the engine skips it when popped."""
        self.cancelled = True
