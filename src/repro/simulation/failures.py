"""Failure injection for resilience experiments.

Schedules crash/recover events against DUST clients on the virtual
clock, either from an explicit scenario or from an exponential
failure/repair process. Used by the failure-recovery example and the
post-offload resilience tests to exercise keepalive expiry, REP replica
substitution, and client re-admission.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled transition."""

    time: float
    node_id: int
    kind: str  # "crash" or "recover"

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "recover"):
            raise SimulationError(f"unknown failure event kind {self.kind!r}")
        if self.time < 0:
            raise SimulationError("failure events need non-negative times")


class FailureInjector:
    """Applies a crash/recover schedule to a set of clients.

    ``clients`` maps node id → an object with ``fail()`` / ``recover()``
    and an ``alive`` attribute (duck-typed so tests can use doubles).
    """

    def __init__(self, engine: SimulationEngine, clients: Dict[int, object]) -> None:
        self.engine = engine
        self.clients = clients
        self.applied: List[FailureEvent] = []

    # -- explicit scenarios ---------------------------------------------------------
    def schedule(self, events: Sequence[FailureEvent]) -> None:
        """Schedule an explicit event list (validated against clients)."""
        for event in events:
            if event.node_id not in self.clients:
                raise SimulationError(f"no client for node {event.node_id}")
            self.engine.schedule_at(
                event.time,
                lambda engine, ev=event: self._apply(ev),
                label=f"{event.kind}-{event.node_id}",
            )

    def _apply(self, event: FailureEvent) -> None:
        client = self.clients[event.node_id]
        if event.kind == "crash":
            if getattr(client, "alive", True):
                client.fail()
                self.applied.append(event)
        else:
            if not getattr(client, "alive", True):
                client.recover()
                self.applied.append(event)

    # -- stochastic process -----------------------------------------------------------
    def schedule_exponential(
        self,
        horizon_s: float,
        mtbf_s: float,
        mttr_s: float,
        seed: Optional[int] = None,
        nodes: Optional[Sequence[int]] = None,
    ) -> List[FailureEvent]:
        """Independent exponential failure/repair per node up to
        ``horizon_s``; returns (and schedules) the generated events.

        ``mtbf_s``: mean time between failures while up;
        ``mttr_s``: mean time to repair while down.
        """
        if horizon_s <= 0 or mtbf_s <= 0 or mttr_s <= 0:
            raise SimulationError("horizon, MTBF and MTTR must be positive")
        rng = np.random.default_rng(seed)
        target_nodes = list(nodes) if nodes is not None else sorted(self.clients)
        events: List[FailureEvent] = []
        for node in target_nodes:
            if node not in self.clients:
                raise SimulationError(f"no client for node {node}")
            t = self.engine.now
            up = True
            while True:
                t += float(rng.exponential(mtbf_s if up else mttr_s))
                if t >= horizon_s:
                    break
                events.append(
                    FailureEvent(time=t, node_id=node, kind="crash" if up else "recover")
                )
                up = not up
        events.sort(key=lambda e: (e.time, e.node_id))
        self.schedule(events)
        return events
