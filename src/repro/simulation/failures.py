"""Failure injection for resilience experiments.

Schedules crash/recover events against DUST clients on the virtual
clock, either from an explicit scenario or from an exponential
failure/repair process. Used by the failure-recovery example and the
post-offload resilience tests to exercise keepalive expiry, REP replica
substitution, and client re-admission.

Besides node churn, the injector can take links up and down. A downed
link is modelled as fully saturated (utilization 1.0, so its effective
bandwidth collapses to the Trmin floor and routes steer around it) via
the :class:`~repro.topology.graph.Topology` mutation API — the version
counter bumps, so version-keyed route caches reprice honestly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.simulation.engine import SimulationEngine
from repro.topology.graph import Topology


@dataclass(frozen=True)
class FailureEvent:
    """One scheduled transition."""

    time: float
    node_id: int
    kind: str  # "crash" or "recover"

    def __post_init__(self) -> None:
        if self.kind not in ("crash", "recover"):
            raise SimulationError(f"unknown failure event kind {self.kind!r}")
        if self.time < 0:
            raise SimulationError("failure events need non-negative times")


@dataclass(frozen=True)
class LinkFailureEvent:
    """One scheduled link transition."""

    time: float
    edge_id: int
    kind: str  # "down" or "up"

    def __post_init__(self) -> None:
        if self.kind not in ("down", "up"):
            raise SimulationError(f"unknown link event kind {self.kind!r}")
        if self.time < 0:
            raise SimulationError("link events need non-negative times")


class FailureInjector:
    """Applies a crash/recover schedule to a set of clients.

    ``clients`` maps node id → an object with ``fail()`` / ``recover()``
    and an ``alive`` attribute (duck-typed so tests can use doubles).
    """

    def __init__(
        self,
        engine: SimulationEngine,
        clients: Dict[int, object],
        topology: Optional[Topology] = None,
    ) -> None:
        self.engine = engine
        self.clients = clients
        self.topology = topology
        self.applied: List[FailureEvent] = []
        self.applied_links: List[LinkFailureEvent] = []
        self._saved_utilization: Dict[int, float] = {}

    # -- explicit scenarios ---------------------------------------------------------
    def schedule(self, events: Sequence[FailureEvent]) -> None:
        """Schedule an explicit event list (validated against clients
        and the engine clock — the past cannot be scheduled)."""
        for event in events:
            if event.node_id not in self.clients:
                raise SimulationError(f"no client for node {event.node_id}")
            if event.time < self.engine.now:
                raise SimulationError(
                    f"failure event at t={event.time} is in the past "
                    f"(engine clock is at {self.engine.now})"
                )
        for event in events:
            self.engine.schedule_at(
                event.time,
                lambda engine, ev=event: self._apply(ev),
                label=f"{event.kind}-{event.node_id}",
            )

    def schedule_links(self, events: Sequence[LinkFailureEvent]) -> None:
        """Schedule link up/down transitions (requires ``topology``)."""
        if self.topology is None:
            raise SimulationError("link events need a topology to mutate")
        for event in events:
            self.topology.link(event.edge_id)  # validates existence
            if event.time < self.engine.now:
                raise SimulationError(
                    f"link event at t={event.time} is in the past "
                    f"(engine clock is at {self.engine.now})"
                )
        for event in events:
            self.engine.schedule_at(
                event.time,
                lambda engine, ev=event: self._apply_link(ev),
                label=f"link-{event.kind}-{event.edge_id}",
            )

    def _apply_link(self, event: LinkFailureEvent) -> None:
        link = self.topology.link(event.edge_id)
        if event.kind == "down":
            if event.edge_id in self._saved_utilization:
                return  # already down
            self._saved_utilization[event.edge_id] = link.utilization
            # Saturating the link floors its effective bandwidth, so
            # Trmin routing steers around it; set_utilization bumps the
            # topology version and marks the edge dirty.
            self.topology.set_utilization(event.edge_id, 1.0)
        else:
            if event.edge_id not in self._saved_utilization:
                return  # never went down (or already restored)
            self.topology.set_utilization(
                event.edge_id, self._saved_utilization.pop(event.edge_id)
            )
        self.applied_links.append(event)

    def _apply(self, event: FailureEvent) -> None:
        client = self.clients[event.node_id]
        if event.kind == "crash":
            if getattr(client, "alive", True):
                client.fail()
                self.applied.append(event)
        else:
            if not getattr(client, "alive", True):
                client.recover()
                self.applied.append(event)

    # -- stochastic process -----------------------------------------------------------
    def schedule_exponential(
        self,
        horizon_s: float,
        mtbf_s: float,
        mttr_s: float,
        seed: Optional[int] = None,
        nodes: Optional[Sequence[int]] = None,
    ) -> List[FailureEvent]:
        """Independent exponential failure/repair per node up to
        ``horizon_s``; returns (and schedules) the generated events.

        ``mtbf_s``: mean time between failures while up;
        ``mttr_s``: mean time to repair while down.
        """
        if horizon_s <= 0 or mtbf_s <= 0 or mttr_s <= 0:
            raise SimulationError("horizon, MTBF and MTTR must be positive")
        rng = np.random.default_rng(seed)
        target_nodes = list(nodes) if nodes is not None else sorted(self.clients)
        events: List[FailureEvent] = []
        for node in target_nodes:
            if node not in self.clients:
                raise SimulationError(f"no client for node {node}")
            t = self.engine.now
            up = True
            while True:
                t += float(rng.exponential(mtbf_s if up else mttr_s))
                if t >= horizon_s:
                    break
                events.append(
                    FailureEvent(time=t, node_id=node, kind="crash" if up else "recover")
                )
                up = not up
        events.sort(key=lambda e: (e.time, e.node_id))
        self.schedule(events)
        return events
