"""Time-varying node load profiles for long-running control-loop sims.

DUST is "a dynamic traffic-aware solution that periodically monitors
the in-device computational load". These callables plug into
``DUSTClient.base_capacity`` to drive realistic load dynamics:

* :class:`DiurnalProfile` — sinusoidal day/night cycle plus noise;
* :class:`SpikeProfile` — flat base with scheduled overload windows;
* :class:`RandomWalkProfile` — mean-reverting (AR(1)) wander.

All are deterministic functions of virtual time for a given seed, so
simulations using them stay reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


@dataclass
class DiurnalProfile:
    """``base + amplitude * sin(2π (t - phase)/period)`` plus noise.

    Noise is drawn deterministically per time bucket so repeated
    evaluations at the same ``t`` agree.
    """

    base_pct: float = 50.0
    amplitude_pct: float = 25.0
    period_s: float = 86_400.0
    phase_s: float = 0.0
    noise_pct: float = 2.0
    seed: int = 0
    floor_pct: float = 0.0
    ceil_pct: float = 100.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise SimulationError("period must be positive")
        if self.amplitude_pct < 0 or self.noise_pct < 0:
            raise SimulationError("amplitude and noise must be non-negative")

    def __call__(self, t: float) -> float:
        wave = self.base_pct + self.amplitude_pct * math.sin(
            2.0 * math.pi * (t - self.phase_s) / self.period_s
        )
        if self.noise_pct > 0:
            bucket = int(t // 60.0)  # per-minute noise, stable within a minute
            rng = np.random.default_rng((self.seed, bucket))
            wave += float(rng.normal(0.0, self.noise_pct))
        return _clamp(wave, self.floor_pct, self.ceil_pct)


@dataclass
class SpikeProfile:
    """Flat base with rectangular overload windows.

    ``windows`` are ``(start_s, end_s, level_pct)`` triples; overlapping
    windows take the maximum level.
    """

    base_pct: float = 30.0
    windows: Sequence[Tuple[float, float, float]] = ()

    def __post_init__(self) -> None:
        for start, end, level in self.windows:
            if end <= start:
                raise SimulationError(f"window ({start}, {end}) is empty")
            if not 0.0 <= level <= 100.0:
                raise SimulationError(f"window level {level} out of [0, 100]")

    def __call__(self, t: float) -> float:
        level = self.base_pct
        for start, end, spike_level in self.windows:
            if start <= t < end:
                level = max(level, spike_level)
        return _clamp(level, 0.0, 100.0)


@dataclass
class RandomWalkProfile:
    """Mean-reverting AR(1) sampled on a fixed step grid.

    ``x_{k+1} = x_k + reversion (mean - x_k) + N(0, sigma)``, evaluated
    by walking deterministically from 0 to the bucket containing ``t``
    (cached incrementally, so sequential evaluation is O(1) per step).
    """

    mean_pct: float = 45.0
    sigma_pct: float = 3.0
    reversion: float = 0.1
    step_s: float = 60.0
    seed: int = 0
    floor_pct: float = 0.0
    ceil_pct: float = 100.0
    _cache: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.step_s <= 0:
            raise SimulationError("step must be positive")
        if not 0.0 < self.reversion <= 1.0:
            raise SimulationError("reversion must be in (0, 1]")
        if self.sigma_pct < 0:
            raise SimulationError("sigma must be non-negative")
        self._cache.append(self.mean_pct)
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, t: float) -> float:
        if t < 0:
            raise SimulationError("profiles are defined for t >= 0")
        bucket = int(t // self.step_s)
        while len(self._cache) <= bucket:
            last = self._cache[-1]
            step = self.reversion * (self.mean_pct - last) + float(
                self._rng.normal(0.0, self.sigma_pct)
            )
            self._cache.append(_clamp(last + step, self.floor_pct, self.ceil_pct))
        return self._cache[bucket]
