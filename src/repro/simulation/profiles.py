"""Time-varying node load profiles and open-loop arrival processes.

DUST is "a dynamic traffic-aware solution that periodically monitors
the in-device computational load". These callables plug into
``DUSTClient.base_capacity`` to drive realistic load dynamics:

* :class:`DiurnalProfile` — sinusoidal day/night cycle plus noise;
* :class:`SpikeProfile` — flat base with scheduled overload windows;
* :class:`RandomWalkProfile` — mean-reverting (AR(1)) wander.

The arrival processes drive the soak engine's *open-loop* event
streams (the environment emits events at its own pace, regardless of
whether the control plane keeps up — closed-loop load generators hide
overload by self-throttling):

* :class:`PoissonArrivals` — homogeneous Poisson, i.i.d. exponential
  gaps;
* :class:`DiurnalArrivals` — inhomogeneous Poisson with a sinusoidal
  rate, sampled exactly via Lewis–Shedler thinning;
* :class:`BurstyArrivals` — two-state MMPP (Markov-modulated Poisson):
  calm/burst regimes with exponential sojourns and distinct rates.

All are deterministic functions of virtual time for a given seed, so
simulations using them stay reproducible.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError


def _clamp(value: float, lo: float, hi: float) -> float:
    return max(lo, min(hi, value))


@dataclass
class DiurnalProfile:
    """``base + amplitude * sin(2π (t - phase)/period)`` plus noise.

    Noise is drawn deterministically per time bucket so repeated
    evaluations at the same ``t`` agree.
    """

    base_pct: float = 50.0
    amplitude_pct: float = 25.0
    period_s: float = 86_400.0
    phase_s: float = 0.0
    noise_pct: float = 2.0
    seed: int = 0
    floor_pct: float = 0.0
    ceil_pct: float = 100.0

    def __post_init__(self) -> None:
        if self.period_s <= 0:
            raise SimulationError("period must be positive")
        if self.amplitude_pct < 0 or self.noise_pct < 0:
            raise SimulationError("amplitude and noise must be non-negative")

    def __call__(self, t: float) -> float:
        wave = self.base_pct + self.amplitude_pct * math.sin(
            2.0 * math.pi * (t - self.phase_s) / self.period_s
        )
        if self.noise_pct > 0:
            bucket = int(t // 60.0)  # per-minute noise, stable within a minute
            rng = np.random.default_rng((self.seed, bucket))
            wave += float(rng.normal(0.0, self.noise_pct))
        return _clamp(wave, self.floor_pct, self.ceil_pct)


@dataclass
class SpikeProfile:
    """Flat base with rectangular overload windows.

    ``windows`` are ``(start_s, end_s, level_pct)`` triples; overlapping
    windows take the maximum level.
    """

    base_pct: float = 30.0
    windows: Sequence[Tuple[float, float, float]] = ()

    def __post_init__(self) -> None:
        for start, end, level in self.windows:
            if end <= start:
                raise SimulationError(f"window ({start}, {end}) is empty")
            if not 0.0 <= level <= 100.0:
                raise SimulationError(f"window level {level} out of [0, 100]")

    def __call__(self, t: float) -> float:
        level = self.base_pct
        for start, end, spike_level in self.windows:
            if start <= t < end:
                level = max(level, spike_level)
        return _clamp(level, 0.0, 100.0)


@dataclass
class RandomWalkProfile:
    """Mean-reverting AR(1) sampled on a fixed step grid.

    ``x_{k+1} = x_k + reversion (mean - x_k) + N(0, sigma)``, evaluated
    by walking deterministically from 0 to the bucket containing ``t``
    (cached incrementally, so sequential evaluation is O(1) per step).
    """

    mean_pct: float = 45.0
    sigma_pct: float = 3.0
    reversion: float = 0.1
    step_s: float = 60.0
    seed: int = 0
    floor_pct: float = 0.0
    ceil_pct: float = 100.0
    _cache: list = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        if self.step_s <= 0:
            raise SimulationError("step must be positive")
        if not 0.0 < self.reversion <= 1.0:
            raise SimulationError("reversion must be in (0, 1]")
        if self.sigma_pct < 0:
            raise SimulationError("sigma must be non-negative")
        self._cache.append(self.mean_pct)
        self._rng = np.random.default_rng(self.seed)

    def __call__(self, t: float) -> float:
        if t < 0:
            raise SimulationError("profiles are defined for t >= 0")
        bucket = int(t // self.step_s)
        while len(self._cache) <= bucket:
            last = self._cache[-1]
            step = self.reversion * (self.mean_pct - last) + float(
                self._rng.normal(0.0, self.sigma_pct)
            )
            self._cache.append(_clamp(last + step, self.floor_pct, self.ceil_pct))
        return self._cache[bucket]


# ---------------------------------------------------------------------------
# Open-loop arrival processes (soak event streams)
# ---------------------------------------------------------------------------


class ArrivalProcess:
    """Base class: a stateful stream of strictly increasing event times.

    Subclasses implement :meth:`_gap`, the (possibly time-dependent)
    wait from the current position to the next arrival. The stream is
    consumed via :meth:`next_arrival`; :meth:`take` is a convenience
    for tests and rate calibration.
    """

    def __init__(self, seed: int = 0) -> None:
        self._rng = np.random.default_rng(seed)
        self._now = 0.0

    def _gap(self) -> float:  # pragma: no cover - abstract
        raise NotImplementedError

    def next_arrival(self) -> float:
        """Advance to and return the next arrival time (seconds)."""
        self._now += self._gap()
        return self._now

    def take(self, n: int) -> list:
        """The next ``n`` arrival times, consuming them."""
        return [self.next_arrival() for _ in range(n)]


class PoissonArrivals(ArrivalProcess):
    """Homogeneous Poisson process: exponential i.i.d. inter-arrivals."""

    def __init__(self, rate_per_s: float, seed: int = 0) -> None:
        if rate_per_s <= 0:
            raise SimulationError("arrival rate must be positive")
        super().__init__(seed)
        self.rate_per_s = rate_per_s

    def _gap(self) -> float:
        return float(self._rng.exponential(1.0 / self.rate_per_s))


class DiurnalArrivals(ArrivalProcess):
    """Inhomogeneous Poisson with a sinusoidal day/night rate.

    ``rate(t) = base * (1 + swing * sin(2π (t - phase)/period))`` with
    ``0 <= swing < 1`` so the rate stays positive. Sampling is exact
    via Lewis–Shedler thinning against the peak rate: candidate gaps
    are drawn from a homogeneous process at ``base * (1 + swing)`` and
    each candidate is accepted with probability ``rate(t)/peak``.
    """

    def __init__(
        self,
        base_rate_per_s: float,
        swing: float = 0.8,
        period_s: float = 86_400.0,
        phase_s: float = 0.0,
        seed: int = 0,
    ) -> None:
        if base_rate_per_s <= 0:
            raise SimulationError("arrival rate must be positive")
        if not 0.0 <= swing < 1.0:
            raise SimulationError("swing must be in [0, 1)")
        if period_s <= 0:
            raise SimulationError("period must be positive")
        super().__init__(seed)
        self.base_rate_per_s = base_rate_per_s
        self.swing = swing
        self.period_s = period_s
        self.phase_s = phase_s
        self._peak = base_rate_per_s * (1.0 + swing)

    def rate_at(self, t: float) -> float:
        """Instantaneous intensity at time ``t``."""
        return self.base_rate_per_s * (
            1.0 + self.swing * math.sin(2.0 * math.pi * (t - self.phase_s) / self.period_s)
        )

    def _gap(self) -> float:
        start = self._now
        t = start
        while True:
            t += float(self._rng.exponential(1.0 / self._peak))
            if self._rng.uniform() <= self.rate_at(t) / self._peak:
                return t - start


class BurstyArrivals(ArrivalProcess):
    """Two-state MMPP: calm/burst regimes with exponential sojourns.

    The process sits in the *calm* state emitting at ``calm_rate`` and
    occasionally jumps into a *burst* state emitting at ``burst_rate``
    (typically an order of magnitude higher). Sojourn times in each
    state are exponential with the given means, so burst onsets are
    memoryless — the stress pattern a backpressure gate must absorb.
    """

    def __init__(
        self,
        calm_rate_per_s: float,
        burst_rate_per_s: float,
        mean_calm_s: float = 300.0,
        mean_burst_s: float = 30.0,
        seed: int = 0,
    ) -> None:
        if calm_rate_per_s <= 0 or burst_rate_per_s <= 0:
            raise SimulationError("arrival rates must be positive")
        if burst_rate_per_s < calm_rate_per_s:
            raise SimulationError("burst rate must be >= calm rate")
        if mean_calm_s <= 0 or mean_burst_s <= 0:
            raise SimulationError("sojourn means must be positive")
        super().__init__(seed)
        self.calm_rate_per_s = calm_rate_per_s
        self.burst_rate_per_s = burst_rate_per_s
        self.mean_calm_s = mean_calm_s
        self.mean_burst_s = mean_burst_s
        self._bursting = False
        # Absolute time at which the current regime ends.
        self._regime_end = float(self._rng.exponential(mean_calm_s))

    @property
    def bursting(self) -> bool:
        """Whether the process is currently in the burst regime."""
        return self._bursting

    def _gap(self) -> float:
        start = self._now
        t = start
        while True:
            rate = self.burst_rate_per_s if self._bursting else self.calm_rate_per_s
            candidate = t + float(self._rng.exponential(1.0 / rate))
            if candidate <= self._regime_end:
                return candidate - start
            # Regime flips before the candidate lands: discard it
            # (memorylessness makes the restart exact) and re-draw
            # from the regime boundary under the new rate.
            t = self._regime_end
            self._bursting = not self._bursting
            mean = self.mean_burst_s if self._bursting else self.mean_calm_s
            self._regime_end = t + float(self._rng.exponential(mean))
