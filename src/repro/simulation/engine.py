"""Minimal deterministic discrete-event engine.

Drives the DUST control plane: periodic STAT reports, manager
optimization rounds, keepalive timers, and message deliveries all run
as scheduled events on one virtual clock. Determinism matters — every
experiment is reproducible from its seed — so simultaneous events fire
in scheduling order (see :class:`~repro.simulation.events.ScheduledEvent`).
"""

from __future__ import annotations

import heapq
from typing import Callable, List, Optional

from repro.errors import SimulationError
from repro.simulation.events import Handler, ScheduledEvent


class SimulationEngine:
    """Virtual-time event loop."""

    def __init__(self, start_time: float = 0.0) -> None:
        self._now = float(start_time)
        self._heap: List[ScheduledEvent] = []
        self._sequence = 0
        self._running = False
        self.events_processed = 0

    @property
    def now(self) -> float:
        """Current virtual time in seconds."""
        return self._now

    # -- scheduling ---------------------------------------------------------------
    def schedule_at(self, time: float, handler: Handler, label: str = "") -> ScheduledEvent:
        """Schedule ``handler(engine)`` at absolute virtual time."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule event {label!r} at {time} before now ({self._now})"
            )
        event = ScheduledEvent(time=time, sequence=self._sequence, handler=handler, label=label)
        self._sequence += 1
        heapq.heappush(self._heap, event)
        return event

    def schedule_after(self, delay: float, handler: Handler, label: str = "") -> ScheduledEvent:
        """Schedule ``handler(engine)`` after a relative delay ≥ 0."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay} for event {label!r}")
        return self.schedule_at(self._now + delay, handler, label)

    def schedule_periodic(
        self,
        period: float,
        handler: Handler,
        label: str = "",
        first_delay: Optional[float] = None,
        condition: Optional[Callable[[], bool]] = None,
    ) -> ScheduledEvent:
        """Schedule ``handler`` every ``period`` seconds until
        ``condition()`` (checked before each firing) returns ``False``.
        Returns the first occurrence's event (cancel it to stop the
        chain before it starts)."""
        if period <= 0:
            raise SimulationError(f"period must be positive, got {period}")

        def tick(engine: "SimulationEngine") -> None:
            if condition is not None and not condition():
                return
            handler(engine)
            engine.schedule_after(period, tick, label)

        delay = period if first_delay is None else first_delay
        return self.schedule_after(delay, tick, label)

    # -- execution ------------------------------------------------------------------
    def step(self) -> bool:
        """Process one event; returns ``False`` when the queue is empty."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if event.cancelled:
                continue
            self._now = event.time
            self.events_processed += 1
            event.handler(self)
            return True
        return False

    def run_until(self, end_time: float, max_events: Optional[int] = None) -> int:
        """Run events with ``time <= end_time``; advances the clock to
        ``end_time`` afterwards. Returns the number of events processed."""
        if end_time < self._now:
            raise SimulationError(f"end_time {end_time} is before now ({self._now})")
        if self._running:
            raise SimulationError("engine is already running (re-entrant run_until)")
        self._running = True
        processed = 0
        try:
            while self._heap:
                head = self._heap[0]
                if head.cancelled:
                    heapq.heappop(self._heap)
                    continue
                if head.time > end_time:
                    break
                heapq.heappop(self._heap)
                self._now = head.time
                self.events_processed += 1
                processed += 1
                head.handler(self)
                if max_events is not None and processed >= max_events:
                    break
        finally:
            self._running = False
        if not self._heap or self._heap[0].time > end_time:
            self._now = end_time
        return processed

    def run(self, max_events: Optional[int] = None) -> int:
        """Run until the queue drains (or ``max_events``)."""
        processed = 0
        while self.step():
            processed += 1
            if max_events is not None and processed >= max_events:
                break
        return processed

    @property
    def pending_events(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)
