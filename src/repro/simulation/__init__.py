"""Discrete-event simulation substrate."""

from __future__ import annotations

from repro.simulation.failures import FailureEvent, FailureInjector
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ScheduledEvent
from repro.simulation.network_sim import Message, MessageNetwork
from repro.simulation.profiles import DiurnalProfile, RandomWalkProfile, SpikeProfile
from repro.simulation.random import rng_from, spawn_seeds
from repro.simulation.traffic import GravityTrafficMatrix

__all__ = [
    "FailureEvent",
    "FailureInjector",
    "DiurnalProfile",
    "GravityTrafficMatrix",
    "Message",
    "MessageNetwork",
    "RandomWalkProfile",
    "ScheduledEvent",
    "SpikeProfile",
    "SimulationEngine",
    "rng_from",
    "spawn_seeds",
]
