"""Discrete-event simulation substrate."""

from __future__ import annotations

from repro.simulation.failures import FailureEvent, FailureInjector, LinkFailureEvent
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ScheduledEvent
from repro.simulation.network_sim import (
    FaultConfig,
    FaultyNetwork,
    Message,
    MessageNetwork,
)
from repro.simulation.profiles import DiurnalProfile, RandomWalkProfile, SpikeProfile
from repro.simulation.random import rng_from, spawn_seeds
from repro.simulation.traffic import GravityTrafficMatrix

# The chaos harness (repro.simulation.chaos) composes this package with
# repro.core, whose modules import repro.simulation.engine — so its
# names are loaded lazily (PEP 562) to keep the import graph acyclic.
_CHAOS_EXPORTS = frozenset(
    {
        "ChaosRunResult",
        "ChaosScenario",
        "ScenarioComparison",
        "default_scenario",
        "evaluate_scenario",
        "run_scenario",
    }
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.simulation import chaos

        return getattr(chaos, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChaosRunResult",
    "ChaosScenario",
    "FailureEvent",
    "FailureInjector",
    "FaultConfig",
    "FaultyNetwork",
    "DiurnalProfile",
    "GravityTrafficMatrix",
    "LinkFailureEvent",
    "Message",
    "MessageNetwork",
    "RandomWalkProfile",
    "ScenarioComparison",
    "ScheduledEvent",
    "SpikeProfile",
    "SimulationEngine",
    "default_scenario",
    "evaluate_scenario",
    "rng_from",
    "run_scenario",
    "spawn_seeds",
]
