"""Discrete-event simulation substrate."""

from __future__ import annotations

from repro.simulation.failures import FailureEvent, FailureInjector, LinkFailureEvent
from repro.simulation.distributed import (
    AssignmentAck,
    NetworkedDistributedSolve,
    ProfileRequest,
    solve_over_network,
)
from repro.simulation.engine import SimulationEngine
from repro.simulation.events import ScheduledEvent
from repro.simulation.network_sim import (
    FaultConfig,
    FaultyNetwork,
    Message,
    MessageNetwork,
)
from repro.simulation.profiles import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    DiurnalProfile,
    PoissonArrivals,
    RandomWalkProfile,
    SpikeProfile,
)
from repro.simulation.random import rng_from, spawn_seeds
from repro.simulation.traffic import GravityTrafficMatrix

# The chaos and soak harnesses compose this package with repro.core,
# whose modules import repro.simulation.engine — so their names are
# loaded lazily (PEP 562) to keep the import graph acyclic.
_CHAOS_EXPORTS = frozenset(
    {
        "ChaosRunResult",
        "ChaosScenario",
        "ScenarioComparison",
        "default_scenario",
        "evaluate_scenario",
        "run_scenario",
    }
)

_SOAK_EXPORTS = frozenset(
    {
        "IngressGate",
        "QoSTier",
        "SoakChaos",
        "SoakConfig",
        "SoakEvent",
        "SoakResult",
        "StreamSpec",
        "default_soak_chaos",
        "run_soak",
    }
)


def __getattr__(name: str):
    if name in _CHAOS_EXPORTS:
        from repro.simulation import chaos

        return getattr(chaos, name)
    if name in _SOAK_EXPORTS:
        from repro.simulation import soak

        return getattr(soak, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ArrivalProcess",
    "AssignmentAck",
    "BurstyArrivals",
    "ChaosRunResult",
    "ChaosScenario",
    "DiurnalArrivals",
    "DiurnalProfile",
    "FailureEvent",
    "FailureInjector",
    "FaultConfig",
    "FaultyNetwork",
    "GravityTrafficMatrix",
    "IngressGate",
    "LinkFailureEvent",
    "Message",
    "MessageNetwork",
    "NetworkedDistributedSolve",
    "PoissonArrivals",
    "ProfileRequest",
    "QoSTier",
    "RandomWalkProfile",
    "ScenarioComparison",
    "ScheduledEvent",
    "SimulationEngine",
    "SoakChaos",
    "SoakConfig",
    "SoakEvent",
    "SoakResult",
    "SpikeProfile",
    "StreamSpec",
    "default_scenario",
    "default_soak_chaos",
    "evaluate_scenario",
    "rng_from",
    "run_scenario",
    "run_soak",
    "solve_over_network",
    "spawn_seeds",
]
