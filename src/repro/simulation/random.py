"""Seed management helpers.

Every experiment derives per-iteration seeds from one master seed with
:func:`spawn_seeds` (numpy ``SeedSequence`` children), so individual
iterations are independently reproducible and experiments stay
deterministic regardless of execution order.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np


def spawn_seeds(master_seed: Optional[int], count: int) -> List[int]:
    """Derive ``count`` independent 32-bit child seeds from a master."""
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    seq = np.random.SeedSequence(master_seed)
    return [int(s.generate_state(1)[0]) for s in seq.spawn(count)]


def rng_from(master_seed: Optional[int], stream: int = 0) -> np.random.Generator:
    """A generator for stream ``stream`` of a master seed."""
    seq = np.random.SeedSequence(master_seed)
    children = seq.spawn(stream + 1)
    return np.random.default_rng(children[stream])
