"""Message-passing network over a topology.

The DUST control plane (Offload-capable / ACK / STAT / Offload-Request
/ Offload-ACK / Keepalive / REP messages, Section III-B) rides on this
layer: :class:`MessageNetwork` delivers payloads between node ids with
a latency equal to the hop-path latency on the underlying topology, via
the discrete-event engine. Endpoints register a receive callback;
unreachable destinations raise immediately (the control network is the
same fabric, which the paper assumes stable).

:class:`FaultyNetwork` drops that stability assumption: a seeded
:class:`FaultConfig` injects per-link message drops, delay jitter,
duplication, explicit reordering delays, and network partitions — the
fault model the hardened protocol (dedup + ACK-gated retransmission in
:mod:`repro.core`) is exercised against. With a null config it is
byte-identical to :class:`MessageNetwork` (no RNG draws, same counters,
same delivery order).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.obs import FAULTY_NETWORK_MIRROR, NETWORK_MIRROR, mirror_counters
from repro.routing.shortest import hop_constrained_shortest
from repro.simulation.engine import SimulationEngine
from repro.topology.graph import Topology

#: Receive callback: (message) -> None.
Receiver = Callable[["Message"], None]


@dataclass(frozen=True)
class Message:
    """A delivered control-plane message."""

    source: int
    destination: int
    payload: Any
    sent_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class MessageNetwork:
    """Latency-faithful message delivery between topology nodes."""

    def __init__(self, topology: Topology, engine: SimulationEngine) -> None:
        self.topology = topology
        self.engine = engine
        self._receivers: Dict[int, Receiver] = {}
        self._latency_cache: Optional[np.ndarray] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- observability ----------------------------------------------------------
    #: Counter attribute -> registry metric, consumed by
    #: :meth:`publish_metrics` (subclasses extend it).
    METRIC_MIRROR = NETWORK_MIRROR

    def publish_metrics(self) -> None:
        """Fold this fabric's cumulative counters into the process-wide
        ``network.*`` metrics (idempotent; see
        :func:`repro.obs.mirror_counters`). Called at sync points —
        e.g. the end of a chaos run — rather than per message, so the
        per-send fast path stays a plain attribute increment."""
        mirror_counters(self, self.METRIC_MIRROR)

    # -- endpoints --------------------------------------------------------------
    def register(self, node_id: int, receiver: Receiver) -> None:
        """Attach the receive callback for ``node_id``."""
        self.topology.node(node_id)
        if node_id in self._receivers:
            raise SimulationError(f"node {node_id} already has a registered receiver")
        self._receivers[node_id] = receiver

    def unregister(self, node_id: int) -> None:
        self._receivers.pop(node_id, None)

    # -- latency model -------------------------------------------------------------
    def _latencies(self) -> np.ndarray:
        """All-pairs control latency (seconds) via min-latency paths.

        Computed lazily once; link latencies are assumed static for the
        control plane (data-plane utilization changes do not affect
        propagation delay).
        """
        if self._latency_cache is None:
            n = self.topology.num_nodes
            weights = np.array(
                [link.latency_ms / 1000.0 for link in self.topology.links]
            )
            # Zero-latency links still need positive weights for the DP.
            weights = np.maximum(weights, 1e-9)
            cache = np.full((n, n), np.inf)
            for src in range(n):
                result = hop_constrained_shortest(self.topology, src, None, weights)
                cache[src] = result.best
            self._latency_cache = cache
        return self._latency_cache

    def latency_between(self, source: int, destination: int) -> float:
        """Control-plane latency between two nodes in seconds."""
        value = float(self._latencies()[source, destination])
        if not np.isfinite(value):
            raise SimulationError(f"nodes {source} and {destination} are disconnected")
        return value

    # -- sending ------------------------------------------------------------------------
    def send(self, source: int, destination: int, payload: Any) -> None:
        """Queue a message for latency-delayed delivery.

        Sending to a node with no registered receiver (crashed or never
        started) silently drops the message, like a real network — the
        drop is counted in :attr:`messages_dropped`.
        """
        self.topology.node(destination)
        if destination not in self._receivers:
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        self._schedule_delivery(
            source, destination, payload, self.latency_between(source, destination)
        )

    def _schedule_delivery(
        self, source: int, destination: int, payload: Any, delay: float
    ) -> None:
        """Shared delivery machinery: one queued in-flight copy."""
        sent_at = self.engine.now

        def deliver(engine: SimulationEngine) -> None:
            receiver = self._receivers.get(destination)
            if receiver is None:
                self.messages_dropped += 1
                return  # endpoint left the network while in flight
            self.messages_delivered += 1
            receiver(
                Message(
                    source=source,
                    destination=destination,
                    payload=payload,
                    sent_at=sent_at,
                    delivered_at=engine.now,
                )
            )

        self.engine.schedule_after(delay, deliver, label=f"msg {source}->{destination}")

    def broadcast(self, source: int, payload: Any) -> int:
        """Send to every registered endpoint except ``source``; returns
        the number of messages queued."""
        count = 0
        for node_id in list(self._receivers):
            if node_id != source:
                self.send(source, node_id, payload)
                count += 1
        return count


@dataclass(frozen=True)
class FaultConfig:
    """Message-fault model for :class:`FaultyNetwork`.

    All probabilities are per in-flight message. ``per_link_drop`` maps
    an *unordered* node pair to a drop probability overriding
    ``drop_probability`` for traffic between those two endpoints.
    ``partitions`` (when non-empty) splits the network into islands:
    a message passes only when some group contains both endpoints, or
    neither endpoint appears in any group (the implicit "rest" island).
    """

    drop_probability: float = 0.0
    duplicate_probability: float = 0.0
    jitter_s: float = 0.0  # extra delivery delay ~ U(0, jitter_s)
    reorder_probability: float = 0.0
    reorder_extra_s: float = 0.5  # added delay for a reordered message
    per_link_drop: Mapping[Tuple[int, int], float] = field(default_factory=dict)
    partitions: Tuple[FrozenSet[int], ...] = ()

    def __post_init__(self) -> None:
        for name in ("drop_probability", "duplicate_probability", "reorder_probability"):
            value = getattr(self, name)
            if not 0.0 <= value <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {value}")
        if self.jitter_s < 0 or self.reorder_extra_s < 0:
            raise SimulationError("jitter/reorder delays must be non-negative")
        for pair, prob in self.per_link_drop.items():
            if not 0.0 <= prob <= 1.0:
                raise SimulationError(f"per-link drop for {pair} must be in [0, 1]")
        object.__setattr__(
            self,
            "per_link_drop",
            {(min(a, b), max(a, b)): float(p) for (a, b), p in self.per_link_drop.items()},
        )
        object.__setattr__(
            self, "partitions", tuple(frozenset(g) for g in self.partitions)
        )

    @property
    def is_null(self) -> bool:
        """True when the config cannot alter any message's fate."""
        return (
            self.drop_probability == 0.0
            and self.duplicate_probability == 0.0
            and self.jitter_s == 0.0
            and self.reorder_probability == 0.0
            and not self.per_link_drop
            and not self.partitions
        )

    def drop_for(self, source: int, destination: int) -> float:
        key = (min(source, destination), max(source, destination))
        return self.per_link_drop.get(key, self.drop_probability)


#: One fault-network event-log row: (time, kind, source, destination, detail).
FaultLogEntry = Tuple[float, str, int, int, str]


class FaultyNetwork(MessageNetwork):
    """A :class:`MessageNetwork` whose fabric misbehaves on purpose.

    Every probabilistic decision comes from one seeded generator, so a
    chaos run is a pure function of ``(scenario, seed)`` — the
    determinism test replays a scenario and asserts the event logs are
    identical. The fault pipeline per message: partition check → drop
    lottery → jitter/reorder delay → optional duplicate (with its own
    independent jitter).
    """

    def __init__(
        self,
        topology: Topology,
        engine: SimulationEngine,
        faults: Optional[FaultConfig] = None,
        seed: Optional[int] = None,
    ) -> None:
        super().__init__(topology, engine)
        self.faults = faults if faults is not None else FaultConfig()
        self._rng = np.random.default_rng(seed)
        self._partitions: Tuple[FrozenSet[int], ...] = self.faults.partitions
        self.faults_dropped = 0
        self.partition_dropped = 0
        self.duplicates_injected = 0
        self.reordered = 0
        self.event_log: List[FaultLogEntry] = []

    METRIC_MIRROR = FAULTY_NETWORK_MIRROR

    # -- partitions -------------------------------------------------------------
    def set_partition(self, groups: Sequence[Sequence[int]]) -> None:
        """Activate a partition mid-run (e.g. from a chaos scenario)."""
        self._partitions = tuple(frozenset(g) for g in groups)

    def heal_partition(self) -> None:
        self._partitions = ()

    def _partition_blocks(self, source: int, destination: int) -> bool:
        if not self._partitions:
            return False
        grouped_src = grouped_dst = False
        for group in self._partitions:
            in_src, in_dst = source in group, destination in group
            if in_src and in_dst:
                return False
            grouped_src |= in_src
            grouped_dst |= in_dst
        # Both outside every group → together in the "rest" island.
        return grouped_src or grouped_dst

    # -- faulty sending ---------------------------------------------------------
    def _log(self, kind: str, source: int, destination: int, payload: Any) -> None:
        detail = type(payload).__name__
        self.event_log.append((self.engine.now, kind, source, destination, detail))

    def send(self, source: int, destination: int, payload: Any) -> None:
        if self.faults.is_null and not self._partitions:
            # Byte-identical fast path: no RNG draw, no logging overhead
            # beyond the base counters.
            super().send(source, destination, payload)
            return
        self.topology.node(destination)
        if self._partition_blocks(source, destination):
            self.messages_dropped += 1
            self.partition_dropped += 1
            self._log("partition-drop", source, destination, payload)
            return
        if destination not in self._receivers:
            self.messages_dropped += 1
            return
        self.messages_sent += 1
        p_drop = self.faults.drop_for(source, destination)
        if p_drop > 0.0 and self._rng.random() < p_drop:
            self.messages_dropped += 1
            self.faults_dropped += 1
            self._log("drop", source, destination, payload)
            return
        base_latency = self.latency_between(source, destination)
        self._schedule_delivery(
            source, destination, payload, base_latency + self._extra_delay(source, destination, payload)
        )
        self._log("send", source, destination, payload)
        if (
            self.faults.duplicate_probability > 0.0
            and self._rng.random() < self.faults.duplicate_probability
        ):
            self.duplicates_injected += 1
            self._schedule_delivery(
                source,
                destination,
                payload,
                base_latency + self._extra_delay(source, destination, payload),
            )
            self._log("duplicate", source, destination, payload)

    def _extra_delay(self, source: int, destination: int, payload: Any) -> float:
        delay = 0.0
        if self.faults.jitter_s > 0.0:
            delay += float(self._rng.uniform(0.0, self.faults.jitter_s))
        if (
            self.faults.reorder_probability > 0.0
            and self._rng.random() < self.faults.reorder_probability
        ):
            self.reordered += 1
            delay += self.faults.reorder_extra_s
            self._log("reorder", source, destination, payload)
        return delay
