"""Message-passing network over a topology.

The DUST control plane (Offload-capable / ACK / STAT / Offload-Request
/ Offload-ACK / Keepalive / REP messages, Section III-B) rides on this
layer: :class:`MessageNetwork` delivers payloads between node ids with
a latency equal to the hop-path latency on the underlying topology, via
the discrete-event engine. Endpoints register a receive callback;
unreachable destinations raise immediately (the control network is the
same fabric, which the paper assumes stable).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

import numpy as np

from repro.errors import SimulationError
from repro.routing.shortest import hop_constrained_shortest
from repro.simulation.engine import SimulationEngine
from repro.topology.graph import Topology

#: Receive callback: (message) -> None.
Receiver = Callable[["Message"], None]


@dataclass(frozen=True)
class Message:
    """A delivered control-plane message."""

    source: int
    destination: int
    payload: Any
    sent_at: float
    delivered_at: float

    @property
    def latency(self) -> float:
        return self.delivered_at - self.sent_at


class MessageNetwork:
    """Latency-faithful message delivery between topology nodes."""

    def __init__(self, topology: Topology, engine: SimulationEngine) -> None:
        self.topology = topology
        self.engine = engine
        self._receivers: Dict[int, Receiver] = {}
        self._latency_cache: Optional[np.ndarray] = None
        self.messages_sent = 0
        self.messages_delivered = 0
        self.messages_dropped = 0

    # -- endpoints --------------------------------------------------------------
    def register(self, node_id: int, receiver: Receiver) -> None:
        """Attach the receive callback for ``node_id``."""
        self.topology.node(node_id)
        if node_id in self._receivers:
            raise SimulationError(f"node {node_id} already has a registered receiver")
        self._receivers[node_id] = receiver

    def unregister(self, node_id: int) -> None:
        self._receivers.pop(node_id, None)

    # -- latency model -------------------------------------------------------------
    def _latencies(self) -> np.ndarray:
        """All-pairs control latency (seconds) via min-latency paths.

        Computed lazily once; link latencies are assumed static for the
        control plane (data-plane utilization changes do not affect
        propagation delay).
        """
        if self._latency_cache is None:
            n = self.topology.num_nodes
            weights = np.array(
                [link.latency_ms / 1000.0 for link in self.topology.links]
            )
            # Zero-latency links still need positive weights for the DP.
            weights = np.maximum(weights, 1e-9)
            cache = np.full((n, n), np.inf)
            for src in range(n):
                result = hop_constrained_shortest(self.topology, src, None, weights)
                cache[src] = result.best
            self._latency_cache = cache
        return self._latency_cache

    def latency_between(self, source: int, destination: int) -> float:
        """Control-plane latency between two nodes in seconds."""
        value = float(self._latencies()[source, destination])
        if not np.isfinite(value):
            raise SimulationError(f"nodes {source} and {destination} are disconnected")
        return value

    # -- sending ------------------------------------------------------------------------
    def send(self, source: int, destination: int, payload: Any) -> None:
        """Queue a message for latency-delayed delivery.

        Sending to a node with no registered receiver (crashed or never
        started) silently drops the message, like a real network — the
        drop is counted in :attr:`messages_dropped`.
        """
        self.topology.node(destination)
        if destination not in self._receivers:
            self.messages_dropped += 1
            return
        latency = self.latency_between(source, destination)
        sent_at = self.engine.now
        self.messages_sent += 1

        def deliver(engine: SimulationEngine) -> None:
            receiver = self._receivers.get(destination)
            if receiver is None:
                self.messages_dropped += 1
                return  # endpoint left the network while in flight
            self.messages_delivered += 1
            receiver(
                Message(
                    source=source,
                    destination=destination,
                    payload=payload,
                    sent_at=sent_at,
                    delivered_at=engine.now,
                )
            )

        self.engine.schedule_after(latency, deliver, label=f"msg {source}->{destination}")

    def broadcast(self, source: int, payload: Any) -> int:
        """Send to every registered endpoint except ``source``; returns
        the number of messages queued."""
        count = 0
        for node_id in list(self._receivers):
            if node_id != source:
                self.send(source, node_id, payload)
                count += 1
        return count
