"""Soak harness: sustained churn + composed chaos against the control plane.

Where :mod:`repro.simulation.chaos` answers "does one disrupted run
converge back to the fault-free placement?", the soak harness answers
the operational question behind ROADMAP item "streaming online control
plane": *does the manager survive hours of open-loop traffic without
falling over, and degrade gracefully when it cannot keep up?*

The driver feeds three **open-loop** event streams (arrival processes
from :mod:`repro.simulation.profiles` — the environment emits at its
own pace whether or not the control plane keeps up) into the manager:

* **load changes** — a device's intrinsic utilisation moves;
* **offload demands** — a device overloads past ``c_max`` and needs
  relief placed;
* **admission/eviction churn** — devices crash out of and re-announce
  into the deployment.

Events pass through a bounded **ingress gate** with strict QoS tiers
(PRODUCTION > STANDARD > BACKGROUND). Overload engages a
:class:`~repro.core.degradation.DegradationLadder`: first BACKGROUND
re-placements are shed, then the re-solve interval widens, finally
placement freezes and the stale assignment keeps serving. PRODUCTION
events are *never* shed or rejected — when the gate is full they evict
the lowest-tier queued event instead (and overflow the bound rather
than drop, which drives the ladder to FREEZE).

Re-placement itself stays **incremental**: rounds run through the
manager's warm-started :class:`~repro.core.placement.PlacementSession`
(LP basis reuse + the Trmin engine's versioned route cache keyed off
the topology's dirty-edge journal), never a from-scratch solve. A
periodic **drift watchdog** keeps that honest: it solves a from-scratch
oracle placement from client ground truth, compares per-source relief
(:func:`~repro.core.metrics.relief_divergence`), and past
``drift_bound`` forces reconvergence via
:meth:`~repro.core.manager.DUSTManager.reset_placement`.

Chaos composes on top: a :class:`FaultConfig` (loss, duplication,
reordering), a timed network partition, and a mid-soak manager crash
recovered by the standby — all while the event streams keep flowing.
"""

from __future__ import annotations

import enum
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Tuple

import numpy as np

from repro.core.client import DUSTClient
from repro.core.degradation import DegradationLadder, DegradationLevel, LadderConfig
from repro.core.failover import SnapshotStore, StandbyManager
from repro.core.heuristic import solve_heuristic
from repro.core.manager import DUSTManager, ManagerCounters
from repro.core.messages import RetryPolicy
from repro.core.metrics import relief_by_source, relief_divergence
from repro.core.placement import PlacementEngine, PlacementProblem
from repro.core.thresholds import ThresholdPolicy
from repro.errors import SimulationError
from repro.obs import CLIENT_MIRROR, get_registry, mirror_counters, trace_span
from repro.routing.response_time import PathEngine, ResponseTimeModel
from repro.simulation.chaos import QoSAuditResult, production_loss_audit
from repro.simulation.engine import SimulationEngine
from repro.simulation.network_sim import FaultConfig, FaultyNetwork
from repro.simulation.profiles import (
    ArrivalProcess,
    BurstyArrivals,
    DiurnalArrivals,
    PoissonArrivals,
)
from repro.topology.fattree import build_fat_tree
from repro.topology.links import LinkUtilizationModel

_TOL = 1e-9


class QoSTier(enum.IntEnum):
    """Event tiers, in shedding order (lowest shed first)."""

    BACKGROUND = 0
    STANDARD = 1
    PRODUCTION = 2


@dataclass(frozen=True)
class SoakEvent:
    """One control-plane event emitted by an arrival stream."""

    time: float
    kind: str  # "load" | "offload" | "churn"
    node: int
    value: float
    tier: QoSTier


@dataclass(frozen=True)
class StreamSpec:
    """One arrival stream: process shape + rate, built per (seed, salt)."""

    kind: str = "poisson"  # "poisson" | "diurnal" | "bursty"
    rate_per_s: float = 10.0
    swing: float = 0.8  # diurnal
    period_s: float = 600.0  # diurnal
    burst_rate_per_s: Optional[float] = None  # bursty (default 10× calm)
    mean_calm_s: float = 120.0  # bursty
    mean_burst_s: float = 20.0  # bursty

    def build(self, seed: int, salt: int) -> ArrivalProcess:
        stream_seed = int(np.random.SeedSequence([seed, salt]).generate_state(1)[0])
        if self.kind == "poisson":
            return PoissonArrivals(self.rate_per_s, seed=stream_seed)
        if self.kind == "diurnal":
            return DiurnalArrivals(
                self.rate_per_s,
                swing=self.swing,
                period_s=self.period_s,
                seed=stream_seed,
            )
        if self.kind == "bursty":
            burst = self.burst_rate_per_s or 10.0 * self.rate_per_s
            return BurstyArrivals(
                self.rate_per_s,
                burst,
                mean_calm_s=self.mean_calm_s,
                mean_burst_s=self.mean_burst_s,
                seed=stream_seed,
            )
        raise SimulationError(f"unknown arrival kind {self.kind!r}")


@dataclass(frozen=True)
class SoakChaos:
    """Composed chaos riding on top of the sustained traffic."""

    faults: FaultConfig = field(default_factory=FaultConfig)
    partition_at: Optional[float] = None
    partition_heal_at: Optional[float] = None
    partition_groups: Tuple[Tuple[int, ...], ...] = ()
    manager_crash_at: Optional[float] = None

    def __post_init__(self) -> None:
        if (self.partition_at is None) != (not self.partition_groups):
            raise SimulationError("partition_at and partition_groups go together")
        if self.partition_at is not None:
            heal = self.partition_heal_at
            if heal is not None and heal <= self.partition_at:
                raise SimulationError("partition must heal after it starts")

    @property
    def is_null(self) -> bool:
        return (
            self.faults.is_null
            and self.partition_at is None
            and self.manager_crash_at is None
        )


def default_soak_chaos(crash_at: float = 240.0) -> SoakChaos:
    """The acceptance composition: 20% loss + duplication/reordering,
    one 60 s partition isolating a pod, one mid-soak manager crash."""
    return SoakChaos(
        faults=FaultConfig(
            drop_probability=0.20,
            duplicate_probability=0.05,
            jitter_s=0.2,
            reorder_probability=0.05,
        ),
        partition_at=crash_at / 2.0,
        partition_heal_at=crash_at / 2.0 + 60.0,
        partition_groups=((16, 17, 18, 19),),  # one fat-tree(4) pod's hosts+edges
        manager_crash_at=crash_at,
    )


@dataclass(frozen=True)
class SoakConfig:
    """One fully-specified soak run (a pure function of its fields)."""

    seed: int = 0
    pods: int = 4
    horizon_s: float = 600.0
    manager_node: int = 0
    standby_node: int = 1
    # -- arrival streams ----------------------------------------------------
    load_stream: StreamSpec = field(default_factory=lambda: StreamSpec("diurnal", 20.0))
    offload_stream: StreamSpec = field(default_factory=lambda: StreamSpec("poisson", 0.25))
    churn_stream: StreamSpec = field(
        default_factory=lambda: StreamSpec("bursty", 0.05, burst_rate_per_s=0.5)
    )
    # -- backpressure gate + degradation ladder -----------------------------
    ingress_capacity: int = 512
    drain_period_s: float = 1.0
    drain_batch: int = 256
    ladder: LadderConfig = field(default_factory=LadderConfig)
    # -- drift watchdog -----------------------------------------------------
    oracle_period_s: float = 60.0
    drift_bound: float = 0.5
    #: Consecutive out-of-bound oracle samples before the watchdog
    #: forces reconvergence — debounce, so an in-flight grant (overload
    #: seen by the oracle before the round that places it) does not
    #: trigger a full teardown.
    watchdog_strikes: int = 2
    # -- chaos --------------------------------------------------------------
    chaos: Optional[SoakChaos] = None
    # -- control-plane wiring (mirrors ChaosScenario) -----------------------
    policy: ThresholdPolicy = field(
        default_factory=lambda: ThresholdPolicy(c_max=80.0, co_max=50.0, x_min=10.0)
    )
    retry_policy: Optional[RetryPolicy] = field(
        default_factory=lambda: RetryPolicy(base_timeout_s=2.0, max_retries=5, jitter=0.5)
    )
    update_interval_s: float = 15.0
    optimization_period_s: float = 30.0
    keepalive_timeout_s: float = 45.0
    keepalive_period_s: float = 10.0
    load_range: Tuple[float, float] = (10.0, 95.0)
    #: Half-width of one load event's random-walk step. Load events are
    #: *deltas*, not resamples: the stream can run at hundreds of
    #: events/s (the throughput target) while each node's load stays a
    #: slowly-drifting signal the 15 s STAT loop can actually track.
    load_step_pct: float = 4.0

    def __post_init__(self) -> None:
        if self.horizon_s <= 0:
            raise SimulationError("soak horizon must be positive")
        if self.ingress_capacity < 1 or self.drain_batch < 1:
            raise SimulationError("gate capacity and drain batch must be >= 1")
        if self.drain_period_s <= 0 or self.oracle_period_s <= 0:
            raise SimulationError("drain and oracle periods must be positive")
        if not 0.0 < self.drift_bound:
            raise SimulationError("drift bound must be positive")
        if self.watchdog_strikes < 1:
            raise SimulationError("watchdog needs at least one strike")
        if self.standby_node == self.manager_node:
            raise SimulationError("standby and manager must be different nodes")
        if self.chaos is not None and self.chaos.manager_crash_at is not None:
            if not 0.0 < self.chaos.manager_crash_at < self.horizon_s:
                raise SimulationError("manager crash must fall inside the horizon")


class IngressGate:
    """Bounded, QoS-tiered admission queue in front of the control plane.

    Admission policy, in order: (1) when the ladder is shedding,
    BACKGROUND events are dropped outright; (2) a full gate rejects
    STANDARD/BACKGROUND arrivals (drop-tail); (3) PRODUCTION arrivals
    are *always* admitted — a full gate evicts its oldest lowest-tier
    queued event to make room, and when only PRODUCTION remains the
    queue overflows its bound instead of dropping (fill > 1 then pushes
    the ladder to FREEZE). Every decision is counted per tier.
    """

    def __init__(self, capacity: int) -> None:
        self.capacity = capacity
        self._queue: Deque[SoakEvent] = deque()
        self.admitted: Dict[QoSTier, int] = {t: 0 for t in QoSTier}
        self.rejected: Dict[QoSTier, int] = {t: 0 for t in QoSTier}
        self.shed: Dict[QoSTier, int] = {t: 0 for t in QoSTier}

    def __len__(self) -> int:
        return len(self._queue)

    @property
    def fill(self) -> float:
        return len(self._queue) / self.capacity

    def admit(self, event: SoakEvent, shedding: bool) -> bool:
        if shedding and event.tier == QoSTier.BACKGROUND:
            self.shed[event.tier] += 1
            get_registry().counter("soak.events_shed").inc()
            return False
        if len(self._queue) >= self.capacity:
            if event.tier != QoSTier.PRODUCTION:
                self.rejected[event.tier] += 1
                get_registry().counter("soak.events_rejected").inc()
                return False
            victim_idx = None
            lowest = QoSTier.PRODUCTION
            for idx, queued in enumerate(self._queue):
                if queued.tier < lowest:
                    lowest, victim_idx = queued.tier, idx
                    if lowest == QoSTier.BACKGROUND:
                        break
            if victim_idx is not None:
                victim = self._queue[victim_idx]
                del self._queue[victim_idx]
                self.rejected[victim.tier] += 1
                get_registry().counter("soak.events_rejected").inc()
            # else: all-PRODUCTION queue — overflow the bound, never drop.
        self._queue.append(event)
        self.admitted[event.tier] += 1
        return True

    def drain(self, limit: int) -> List[SoakEvent]:
        batch: List[SoakEvent] = []
        while self._queue and len(batch) < limit:
            batch.append(self._queue.popleft())
        return batch


@dataclass
class SoakResult:
    """Everything a soak run produced, acceptance metrics first."""

    config: SoakConfig
    events_generated: int
    events_applied: int
    applied_by_tier: Dict[QoSTier, int]
    rejected_by_tier: Dict[QoSTier, int]
    shed_by_tier: Dict[QoSTier, int]
    wall_seconds: float
    events_per_min: float
    latency_p50_s: float
    latency_p95_s: float
    latency_p99_s: float
    ladder_max_level: DegradationLevel
    ladder_transitions: Tuple[tuple, ...]
    drift_samples: Tuple[Tuple[float, float], ...]
    final_drift: float
    watchdog_resets: int
    took_over_at: Optional[float]
    qos: QoSAuditResult
    counters: ManagerCounters
    # Live objects, for tests that want to poke the post-run state.
    manager: DUSTManager = field(repr=False)
    standby: Optional[StandbyManager] = field(repr=False)
    clients: Dict[int, DUSTClient] = field(repr=False)
    engine: SimulationEngine = field(repr=False)
    network: FaultyNetwork = field(repr=False)
    gate: IngressGate = field(repr=False)

    @property
    def production_losses(self) -> int:
        """PRODUCTION-tier events shed or rejected (acceptance: zero)."""
        return (
            self.rejected_by_tier[QoSTier.PRODUCTION]
            + self.shed_by_tier[QoSTier.PRODUCTION]
        )


class _SoakDriver:
    """Run-scoped state machine wiring streams → gate → control plane."""

    def __init__(self, config: SoakConfig) -> None:
        self.config = config
        self.topology = build_fat_tree(config.pods)
        LinkUtilizationModel(0.2, 0.7, seed=config.seed).apply(self.topology)
        self.engine = SimulationEngine()
        faults = config.chaos.faults if config.chaos is not None else FaultConfig()
        self.network = FaultyNetwork(
            self.topology, self.engine, faults=faults, seed=config.seed
        )
        self.gate = IngressGate(config.ingress_capacity)
        self.ladder = DegradationLadder(config.ladder)
        self.loads: Dict[int, float] = {}
        self.clients: Dict[int, DUSTClient] = {}
        self.events_generated = 0
        self.applied_by_tier: Dict[QoSTier, int] = {t: 0 for t in QoSTier}
        self.latencies: List[float] = []
        self.drift_samples: List[Tuple[float, float]] = []
        self.watchdog_resets = 0
        self._drift_strikes = 0
        self.admissions = 0
        self.evictions = 0
        self._rng = np.random.default_rng(config.seed)
        # From-scratch oracle: its own engine so nothing warm-starts and
        # its route cache never mixes with the incremental session's.
        self._oracle_engine = PlacementEngine(
            response_model=ResponseTimeModel(engine=PathEngine.DP)
        )

        store = SnapshotStore()
        self.manager = DUSTManager(
            node_id=config.manager_node,
            topology=self.topology,
            engine=self.engine,
            network=self.network,
            policy=config.policy,
            update_interval_s=config.update_interval_s,
            optimization_period_s=config.optimization_period_s,
            keepalive_timeout_s=config.keepalive_timeout_s,
            retry_policy=config.retry_policy,
            snapshot_store=store,
            standby_node=config.standby_node,
            heartbeat_period_s=config.keepalive_period_s,
            dedup_ttl_s=20.0 * config.update_interval_s,
            transport_seed=config.seed,
            on_admission=self._on_admission,
            on_eviction=self._on_eviction,
        )
        self.manager.start()
        self.standby = StandbyManager(
            node_id=config.standby_node,
            topology=self.topology,
            engine=self.engine,
            network=self.network,
            policy=config.policy,
            snapshot_store=store,
            primary_node=config.manager_node,
            takeover_silence_s=3.0 * config.keepalive_period_s,
            check_period_s=config.keepalive_period_s,
            manager_kwargs=dict(
                update_interval_s=config.update_interval_s,
                optimization_period_s=config.optimization_period_s,
                keepalive_timeout_s=config.keepalive_timeout_s,
                retry_policy=config.retry_policy,
                dedup_ttl_s=20.0 * config.update_interval_s,
                transport_seed=config.seed,
                on_admission=self._on_admission,
                on_eviction=self._on_eviction,
            ),
        )
        self.standby.start()

        reserved = {config.manager_node, config.standby_node}
        low, high = config.load_range
        for node in range(self.topology.num_nodes):
            if node in reserved:
                continue
            self.loads[node] = float(self._rng.uniform(low, min(high, 60.0)))
            client = DUSTClient(
                node_id=node,
                engine=self.engine,
                network=self.network,
                manager_node=config.manager_node,
                policy=config.policy,
                base_capacity=(lambda t, n=node: self.loads[n]),
                keepalive_period_s=config.keepalive_period_s,
                retry_policy=config.retry_policy,
            )
            client.start()
            self.clients[node] = client
        self._churnable = np.array(sorted(self.clients))

    # -- manager hooks --------------------------------------------------------
    def _on_admission(self, node: int) -> None:
        self.admissions += 1
        get_registry().counter("soak.admissions").inc()

    def _on_eviction(self, node: int) -> None:
        self.evictions += 1
        get_registry().counter("soak.evictions").inc()

    def active(self) -> DUSTManager:
        if self.standby.manager is not None:
            return self.standby.manager
        return self.manager

    # -- event generation (open loop) ----------------------------------------
    def _tier_of(self, node: int) -> QoSTier:
        # Fixed per-node tiers (node id mod 4): 1/4 of the fleet is
        # PRODUCTION, 1/2 STANDARD, 1/4 BACKGROUND.
        bucket = node % 4
        if bucket == 0:
            return QoSTier.PRODUCTION
        if bucket == 3:
            return QoSTier.BACKGROUND
        return QoSTier.STANDARD

    def _make_event(self, kind: str, now: float) -> SoakEvent:
        node = int(self._churnable[self._rng.integers(len(self._churnable))])
        low, high = self.config.load_range
        if kind == "load":
            step = self.config.load_step_pct
            value = float(self._rng.uniform(-step, step))
        elif kind == "offload":
            # An explicit offload demand: push the node past c_max.
            value = float(
                self._rng.uniform(min(self.config.policy.c_max + 2.0, high), high)
            )
        else:  # churn — value unused
            value = 0.0
        return SoakEvent(time=now, kind=kind, node=node, value=value, tier=self._tier_of(node))

    def _schedule_stream(self, kind: str, process: ArrivalProcess) -> None:
        horizon = self.config.horizon_s

        def fire(engine: SimulationEngine, k: str = kind, p: ArrivalProcess = process) -> None:
            self.events_generated += 1
            get_registry().counter("soak.events_generated").inc()
            event = self._make_event(k, engine.now)
            self.gate.admit(event, shedding=self.ladder.shedding_low_tier)
            nxt = p.next_arrival()
            if nxt < horizon:
                engine.schedule_at(nxt, fire, label=f"soak-{k}")

        first = process.next_arrival()
        if first < horizon:
            self.engine.schedule_at(first, fire, label=f"soak-{kind}")

    # -- event application (drain loop) ---------------------------------------
    def _apply(self, event: SoakEvent) -> None:
        if event.kind == "load":
            low, high = self.config.load_range
            self.loads[event.node] = min(
                high, max(low, self.loads[event.node] + event.value)
            )
        elif event.kind == "offload":
            self.loads[event.node] = event.value
        else:  # churn
            client = self.clients[event.node]
            if client.alive:
                client.fail()
            else:
                client.recover()
        self.applied_by_tier[event.tier] += 1
        self.latencies.append(self.engine.now - event.time)

    def _drain_tick(self) -> None:
        registry = get_registry()
        batch = self.gate.drain(self.config.drain_batch)
        for event in batch:
            self._apply(event)
        if batch:
            registry.counter("soak.events_applied").inc(len(batch))
        registry.gauge("soak.ingress_depth").set(len(self.gate))
        level = self.ladder.update(self.gate.fill, self.engine.now)
        mgr = self.active()
        mgr.placement_frozen = level >= DegradationLevel.FREEZE
        mgr.optimization_period_s = self.ladder.resolve_period(
            self.config.optimization_period_s
        )

    # -- drift watchdog --------------------------------------------------------
    def _oracle_relief(self) -> Dict[int, float]:
        """From-scratch oracle: what relief each source *should* get.

        Solves a fresh placement from the manager's own view — NMDB
        capacities with the ledger's offloads mentally torn down
        (``base = reported − offloaded + hosted`` inverted) — so the
        comparison isolates drift of the *incrementally maintained*
        placement from monitoring staleness, which hits oracle and
        incumbent alike.
        """
        mgr = self.active()
        now = self.engine.now
        policy = self.config.policy
        snapshot = mgr.nmdb.snapshot(now)
        stale = set(mgr.nmdb.stale_nodes(now, mgr.stale_after_s))
        offloaded: Dict[int, float] = {}
        hosted: Dict[int, float] = {}
        for row in mgr.ledger.active:
            offloaded[row.source] = offloaded.get(row.source, 0.0) + row.amount_pct
            hosted[row.destination] = hosted.get(row.destination, 0.0) + row.amount_pct
        reserved = {self.config.manager_node, self.config.standby_node}
        busy: List[int] = []
        candidates: List[int] = []
        base = np.zeros(self.topology.num_nodes)
        for node in range(self.topology.num_nodes):
            if node in reserved or node in stale or not snapshot.participating[node]:
                continue
            base[node] = (
                snapshot.capacities[node]
                + offloaded.get(node, 0.0)
                - hosted.get(node, 0.0)
            )
            if policy.excess_load(base[node]) > _TOL:
                busy.append(node)
            elif policy.spare_capacity(base[node]) > _TOL:
                candidates.append(node)
        if not busy:
            return {}
        problem = PlacementProblem(
            topology=self.topology,
            busy=tuple(busy),
            candidates=tuple(candidates),
            cs=np.array([policy.excess_load(base[b]) for b in busy]),
            cd=np.array([policy.spare_capacity(base[c]) for c in candidates]),
            data_mb=snapshot.data_mb[busy],
        )
        report = self._oracle_engine.solve(problem)
        assignments = report.assignments
        if not report.feasible:
            assignments = solve_heuristic(
                problem, trmin_engine=self._oracle_engine.trmin_engine
            ).assignments
        relief: Dict[int, float] = {}
        for a in assignments:
            relief[a.busy] = relief.get(a.busy, 0.0) + a.amount_pct
        return relief

    def _watchdog_tick(self) -> None:
        registry = get_registry()
        registry.counter("soak.oracle_solves").inc()
        oracle = self._oracle_relief()
        mgr = self.active()
        if mgr.distributed_engine is not None:
            # Distributed mode: score the per-zone partial views the zone
            # managers report; relief_divergence merges them, so a split
            # view can never read differently from the global ledger.
            observed = [
                relief_by_source(
                    row
                    for row in mgr.ledger.active
                    if row.source in zone_members
                )
                for zone_members in (
                    frozenset(z.nodes) for z in mgr.distributed_engine.zones
                )
            ]
        else:
            observed = relief_by_source(mgr.ledger.active)
        drift = relief_divergence(oracle, observed)
        self.drift_samples.append((self.engine.now, drift))
        registry.gauge("soak.oracle_drift").set(drift)
        if drift <= self.config.drift_bound:
            self._drift_strikes = 0
            return
        self._drift_strikes += 1
        if self._drift_strikes >= self.config.watchdog_strikes and not self.ladder.frozen:
            self._drift_strikes = 0
            self.watchdog_resets += 1
            registry.counter("soak.watchdog_resets").inc()
            mgr = self.active()
            mgr.reset_placement()
            mgr.run_optimization_round()

    # -- chaos ----------------------------------------------------------------
    def _schedule_chaos(self) -> None:
        chaos = self.config.chaos
        if chaos is None:
            return
        if chaos.partition_at is not None:
            groups = chaos.partition_groups
            self.engine.schedule_at(
                chaos.partition_at,
                lambda _e: self.network.set_partition(groups),
                label="soak-partition",
            )
            if chaos.partition_heal_at is not None:
                self.engine.schedule_at(
                    chaos.partition_heal_at,
                    lambda _e: self.network.heal_partition(),
                    label="soak-partition-heal",
                )
        if chaos.manager_crash_at is not None:
            self.engine.schedule_at(
                chaos.manager_crash_at,
                lambda _e: self.manager.crash() if self.manager.alive else None,
                label="soak-manager-crash",
            )

    # -- run ------------------------------------------------------------------
    def run(self) -> SoakResult:
        config = self.config
        for salt, (kind, spec) in enumerate(
            (
                ("load", config.load_stream),
                ("offload", config.offload_stream),
                ("churn", config.churn_stream),
            ),
            start=1,
        ):
            self._schedule_stream(kind, spec.build(config.seed, salt=salt))
        self.engine.schedule_periodic(
            config.drain_period_s, lambda _e: self._drain_tick(), label="soak-drain"
        )
        self.engine.schedule_periodic(
            config.oracle_period_s,
            lambda _e: self._watchdog_tick(),
            label="soak-watchdog",
        )
        self._schedule_chaos()

        wall_start = time.perf_counter()
        self.engine.run_until(config.horizon_s)
        # Flush whatever the gate still holds so every admitted event is
        # applied before the final audit.
        while len(self.gate):
            for event in self.gate.drain(config.drain_batch):
                self._apply(event)
        wall = time.perf_counter() - wall_start

        current = self.active()
        counters = current.refresh_transport_counters()
        qos = production_loss_audit(current, self.topology, self.clients)
        # Closing drift sample: did the run end reconverged?
        self._watchdog_tick()

        events_applied = sum(self.applied_by_tier.values())
        per_min = events_applied / wall * 60.0 if wall > 0 else 0.0
        registry = get_registry()
        registry.gauge("soak.events_per_min").set(per_min)
        if self.latencies:
            hist = registry.histogram("soak.event_latency_s")
            for sample in self.latencies:
                hist.observe(sample)
            p50, p95, p99 = np.percentile(self.latencies, [50.0, 95.0, 99.0])
        else:
            p50 = p95 = p99 = float("nan")
        final_drift = self.drift_samples[-1][1] if self.drift_samples else 0.0
        for client in self.clients.values():
            mirror_counters(client, CLIENT_MIRROR)
        self.network.publish_metrics()
        return SoakResult(
            config=config,
            events_generated=self.events_generated,
            events_applied=events_applied,
            applied_by_tier=dict(self.applied_by_tier),
            rejected_by_tier=dict(self.gate.rejected),
            shed_by_tier=dict(self.gate.shed),
            wall_seconds=wall,
            events_per_min=per_min,
            latency_p50_s=float(p50),
            latency_p95_s=float(p95),
            latency_p99_s=float(p99),
            ladder_max_level=self.ladder.max_level,
            ladder_transitions=tuple(self.ladder.transitions),
            drift_samples=tuple(self.drift_samples),
            final_drift=final_drift,
            watchdog_resets=self.watchdog_resets,
            took_over_at=self.standby.took_over_at,
            qos=qos,
            counters=counters,
            manager=self.manager,
            standby=self.standby,
            clients=self.clients,
            engine=self.engine,
            network=self.network,
            gate=self.gate,
        )


def run_soak(config: SoakConfig) -> SoakResult:
    """Execute one soak run on a fresh engine; fully deterministic in
    simulated behaviour for a given config (wall-clock throughput and
    latency percentiles are measured, not simulated).

    Each run increments ``soak.runs`` and times itself into
    ``soak.run_seconds``; with tracing on the whole run nests under one
    ``soak.run`` span.
    """
    start = time.perf_counter()
    chaotic = config.chaos is not None and not config.chaos.is_null
    with trace_span("soak.run", seed=config.seed, chaotic=chaotic):
        result = _SoakDriver(config).run()
    registry = get_registry()
    registry.counter("soak.runs").inc()
    registry.histogram("soak.run_seconds").observe(time.perf_counter() - start)
    return result
