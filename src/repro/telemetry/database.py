"""In-memory subscription database — the NOS state DB analogue.

The paper's monitor agents "continuously monitor updates within
specific database (DB) tables on network devices" (Section III-A); the
reference platform is a database-driven network OS (AOS-CX style).
:class:`StateDatabase` reproduces the interaction pattern that matters
for the resource model: tables of keyed rows, subscriber callbacks
fired per committed update, and per-table update counters that the
device cost model converts into CPU time.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Tuple

from repro.errors import TelemetryError

#: Signature of a table subscriber: (table, row_key, new_row) -> None.
Subscriber = Callable[[str, str, Mapping[str, Any]], None]

#: Signature of a bulk subscriber: (table, update_count) -> None. Bulk
#: notifications exist so synthetic workload drivers can account for
#: thousands of updates per interval in O(1) instead of O(count) —
#: agents only *count* updates, so the aggregate is lossless for them.
BulkSubscriber = Callable[[str, int], None]


@dataclass
class TableStats:
    """Mutable per-table counters consumed by the device cost model."""

    updates_total: int = 0
    updates_since_mark: int = 0

    def mark(self) -> int:
        """Return updates since the previous mark and reset the window."""
        count = self.updates_since_mark
        self.updates_since_mark = 0
        return count


class StateDatabase:
    """Keyed-row tables with synchronous subscriber notification.

    Rows are plain dicts keyed by a string primary key. Writes are
    committed immediately; every committed write increments the table's
    update counters and invokes subscribers in registration order.
    Subscribers must not write back into the database during
    notification (no re-entrancy) — the paper's agents only *read*
    state and emit time-series points.
    """

    def __init__(self, name: str = "statedb") -> None:
        self.name = name
        self._tables: Dict[str, Dict[str, Dict[str, Any]]] = {}
        self._subscribers: Dict[str, List[Subscriber]] = defaultdict(list)
        self._bulk_subscribers: Dict[str, List[BulkSubscriber]] = defaultdict(list)
        self._stats: Dict[str, TableStats] = {}
        self._notifying = False

    # -- schema ------------------------------------------------------------------
    def create_table(self, table: str) -> None:
        """Create an empty table; idempotent re-creation is an error."""
        if table in self._tables:
            raise TelemetryError(f"table {table!r} already exists in {self.name!r}")
        self._tables[table] = {}
        self._stats[table] = TableStats()

    def ensure_table(self, table: str) -> None:
        """Create ``table`` unless it already exists."""
        if table not in self._tables:
            self.create_table(table)

    @property
    def tables(self) -> Tuple[str, ...]:
        return tuple(self._tables)

    def _table(self, table: str) -> Dict[str, Dict[str, Any]]:
        try:
            return self._tables[table]
        except KeyError:
            raise TelemetryError(f"unknown table {table!r} in {self.name!r}") from None

    # -- reads --------------------------------------------------------------------
    def get(self, table: str, key: str) -> Optional[Dict[str, Any]]:
        """Row by key, or ``None``."""
        return self._table(table).get(key)

    def rows(self, table: str) -> Dict[str, Dict[str, Any]]:
        """Shallow copy of the whole table."""
        return dict(self._table(table))

    def row_count(self, table: str) -> int:
        return len(self._table(table))

    # -- writes -------------------------------------------------------------------
    def upsert(self, table: str, key: str, row: Mapping[str, Any]) -> None:
        """Insert or replace a row, notifying subscribers."""
        if self._notifying:
            raise TelemetryError(
                "re-entrant write during subscriber notification is not allowed"
            )
        tbl = self._table(table)
        tbl[key] = dict(row)
        stats = self._stats[table]
        stats.updates_total += 1
        stats.updates_since_mark += 1
        self._notifying = True
        try:
            for callback in self._subscribers.get(table, ()):
                callback(table, key, tbl[key])
        finally:
            self._notifying = False

    def update_fields(self, table: str, key: str, **fields: Any) -> None:
        """Merge fields into an existing row (must exist)."""
        tbl = self._table(table)
        if key not in tbl:
            raise TelemetryError(f"row {key!r} not found in table {table!r}")
        merged = dict(tbl[key])
        merged.update(fields)
        self.upsert(table, key, merged)

    def bulk_upsert(self, table: str, rows: Iterable[Tuple[str, Mapping[str, Any]]]) -> int:
        """Upsert many rows; returns the number written."""
        count = 0
        for key, row in rows:
            self.upsert(table, key, row)
            count += 1
        return count

    def record_synthetic_updates(self, table: str, count: int) -> None:
        """Account ``count`` updates to ``table`` without materializing
        rows. Used by workload drivers to model high-rate churn (e.g.
        interface counters under line-rate VxLAN traffic) with O(1)
        bookkeeping; bulk subscribers are notified with the aggregate."""
        if count < 0:
            raise TelemetryError(f"update count must be non-negative, got {count}")
        if count == 0:
            return
        self._table(table)  # validate
        stats = self._stats[table]
        stats.updates_total += count
        stats.updates_since_mark += count
        self._notifying = True
        try:
            for callback in self._bulk_subscribers.get(table, ()):
                callback(table, count)
        finally:
            self._notifying = False

    # -- subscriptions ---------------------------------------------------------------
    def subscribe_bulk(self, table: str, callback: BulkSubscriber) -> None:
        """Register an aggregate-count subscriber for ``table``."""
        self._table(table)  # validate
        self._bulk_subscribers[table].append(callback)

    def unsubscribe_bulk(self, table: str, callback: BulkSubscriber) -> None:
        """Remove a bulk subscriber (no-op if absent)."""
        try:
            self._bulk_subscribers[table].remove(callback)
        except ValueError:
            pass

    def subscribe(self, table: str, callback: Subscriber) -> None:
        """Register ``callback`` for committed writes to ``table``."""
        self._table(table)  # validate
        self._subscribers[table].append(callback)

    def unsubscribe(self, table: str, callback: Subscriber) -> None:
        """Remove a previously registered callback (no-op if absent)."""
        try:
            self._subscribers[table].remove(callback)
        except ValueError:
            pass

    def subscriber_count(self, table: str) -> int:
        return len(self._subscribers.get(table, ()))

    # -- stats ----------------------------------------------------------------------
    def stats(self, table: str) -> TableStats:
        try:
            return self._stats[table]
        except KeyError:
            raise TelemetryError(f"unknown table {table!r} in {self.name!r}") from None

    def drain_update_counts(self) -> Dict[str, int]:
        """Per-table updates since the last drain (and reset windows)."""
        return {table: stats.mark() for table, stats in self._stats.items()}
