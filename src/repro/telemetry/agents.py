"""Monitor agents — the user-defined in-device analytics of UDAAN/DUST.

The paper's testbed installs "10 user-defined monitoring agents …
routing protocols, software and network health, software functions and
system resource utilization e.g. CPU/Memory, Rx/Tx packet rates on
interfaces, link states, system temperature and hardware health, fault
finder". Each :class:`MonitorAgentSpec` names the DB tables the agent
watches and its cost coefficients; :class:`MonitorAgent` is the runtime
that subscribes to a :class:`~repro.telemetry.database.StateDatabase`,
charges CPU per processed update, and emits points into a
:class:`~repro.telemetry.tsdb.TimeSeriesDatabase`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError
from repro.telemetry.database import StateDatabase
from repro.telemetry.tsdb import TimeSeriesDatabase


@dataclass(frozen=True)
class MonitorAgentSpec:
    """Static description of one monitoring agent.

    Attributes
    ----------
    name:
        Agent identity (unique per device).
    tables:
        StateDatabase tables the agent subscribes to.
    cpu_ms_per_update:
        CPU milliseconds charged per processed table update — analytics
        work (parsing, feature extraction, anomaly scoring).
    cpu_ms_per_interval:
        Fixed CPU milliseconds per collection interval (bookkeeping,
        rule evaluation) even with zero updates.
    memory_mb:
        Resident footprint of the agent process (code + state + its
        TSDB buffers).
    emits:
        Metric names the agent writes to the TSDB.
    """

    name: str
    tables: Tuple[str, ...]
    cpu_ms_per_update: float
    cpu_ms_per_interval: float
    memory_mb: float
    emits: Tuple[str, ...]

    def __post_init__(self) -> None:
        if self.cpu_ms_per_update < 0 or self.cpu_ms_per_interval < 0:
            raise TelemetryError(f"agent {self.name!r}: CPU costs must be non-negative")
        if self.memory_mb <= 0:
            raise TelemetryError(f"agent {self.name!r}: memory footprint must be positive")
        if not self.tables:
            raise TelemetryError(f"agent {self.name!r}: must watch at least one table")


def paper_agent_specs() -> List[MonitorAgentSpec]:
    """The 10 agents of the paper's testbed (footnote 1), with cost
    coefficients calibrated so the Fig. 1 / Fig. 6 experiments land in
    the published bands (see ``repro.testbed.monitoring_run``).

    Memory totals ≈ 1.2 GiB (the paper: "retaining around 1.2 GiB
    memory usage indicates that monitoring workloads are perfect
    offloading candidates").
    """
    mk = MonitorAgentSpec
    return [
        mk("routing-protocol-health", ("routes", "bgp_neighbors", "ospf_interfaces"),
           cpu_ms_per_update=0.22, cpu_ms_per_interval=120.0, memory_mb=160.0,
           emits=("route_churn", "bgp_flaps", "ospf_adjacency_changes")),
        mk("software-health", ("daemons", "process_stats"),
           cpu_ms_per_update=0.14, cpu_ms_per_interval=80.0, memory_mb=110.0,
           emits=("daemon_restarts", "crash_count")),
        mk("network-health", ("interfaces", "lldp_neighbors"),
           cpu_ms_per_update=0.18, cpu_ms_per_interval=100.0, memory_mb=130.0,
           emits=("if_error_rate", "neighbor_changes")),
        mk("software-functions", ("acl_stats", "vxlan_tunnels"),
           cpu_ms_per_update=0.24, cpu_ms_per_interval=90.0, memory_mb=140.0,
           emits=("acl_hits", "tunnel_count", "tunnel_churn")),
        mk("system-resource-utilization", ("system_stats",),
           cpu_ms_per_update=0.12, cpu_ms_per_interval=110.0, memory_mb=120.0,
           emits=("cpu_pct", "memory_pct", "disk_pct")),
        mk("rx-tx-packet-rates", ("interface_counters",),
           cpu_ms_per_update=0.08, cpu_ms_per_interval=100.0, memory_mb=150.0,
           emits=("rx_pps", "tx_pps", "rx_bps", "tx_bps")),
        mk("link-states", ("interfaces", "transceivers"),
           cpu_ms_per_update=0.10, cpu_ms_per_interval=60.0, memory_mb=90.0,
           emits=("link_transitions", "optical_power")),
        mk("system-temperature", ("sensors",),
           cpu_ms_per_update=0.08, cpu_ms_per_interval=50.0, memory_mb=70.0,
           emits=("temperature_c", "fan_rpm")),
        mk("hardware-health", ("power_supplies", "fans", "asic_stats"),
           cpu_ms_per_update=0.12, cpu_ms_per_interval=70.0, memory_mb=100.0,
           emits=("psu_status", "asic_drops")),
        mk("fault-finder", ("system_logs", "interface_counters", "asic_stats"),
           cpu_ms_per_update=0.28, cpu_ms_per_interval=150.0, memory_mb=158.0,
           emits=("fault_score", "anomaly_count")),
    ]


#: Total memory footprint of the paper's agent set, in MiB (≈ 1.2 GiB).
PAPER_AGENT_MEMORY_MB = sum(spec.memory_mb for spec in paper_agent_specs())


class MonitorAgent:
    """Runtime instance of an agent, attached to a DB and a TSDB.

    The agent counts updates on its subscribed tables; the owning
    device converts counted work into CPU time via the spec's
    coefficients at each collection interval (this keeps the hot path —
    DB writes — allocation-free).
    """

    def __init__(
        self,
        spec: MonitorAgentSpec,
        database: StateDatabase,
        tsdb: TimeSeriesDatabase,
        tags: Optional[Mapping[str, str]] = None,
    ) -> None:
        self.spec = spec
        self.database = database
        self.tsdb = tsdb
        self.tags = dict(tags or {})
        self._pending_updates = 0
        self._attached = False
        self.total_updates_processed = 0
        self.intervals_run = 0

    # -- lifecycle -------------------------------------------------------------
    def attach(self) -> None:
        """Subscribe to all watched tables (creating them if needed)."""
        if self._attached:
            raise TelemetryError(f"agent {self.spec.name!r} is already attached")
        for table in self.spec.tables:
            self.database.ensure_table(table)
            self.database.subscribe(table, self._on_update)
            self.database.subscribe_bulk(table, self._on_bulk)
        self._attached = True

    def detach(self) -> None:
        """Unsubscribe from all tables (used when the agent offloads)."""
        if not self._attached:
            return
        for table in self.spec.tables:
            self.database.unsubscribe(table, self._on_update)
            self.database.unsubscribe_bulk(table, self._on_bulk)
        self._attached = False

    @property
    def attached(self) -> bool:
        return self._attached

    # -- data path ----------------------------------------------------------------
    def _on_update(self, table: str, key: str, row: Mapping[str, object]) -> None:
        self._pending_updates += 1

    def _on_bulk(self, table: str, count: int) -> None:
        self._pending_updates += count

    def run_interval(self, now: float) -> float:
        """Process the window's pending updates; returns CPU *seconds*
        consumed. Emits one point per declared metric."""
        updates = self._pending_updates
        self._pending_updates = 0
        self.total_updates_processed += updates
        self.intervals_run += 1
        cpu_ms = self.spec.cpu_ms_per_interval + self.spec.cpu_ms_per_update * updates
        for metric in self.spec.emits:
            # The emitted value is a cheap stand-in for real analytics:
            # the experiments only consume the resource accounting.
            self.tsdb.append(metric, now, float(updates), tags=self.tags)
        return cpu_ms / 1000.0

    @property
    def pending_updates(self) -> int:
        return self._pending_updates
