"""Time-series federation — the DUST-Manager's network-wide view.

The architecture's "Time-Series Federation" component (Fig. 2)
aggregates per-node TSDB data "throughout the underlying network".
:class:`TimeSeriesFederation` registers member TSDBs, fans queries out
across them, and merges the results — including federated bucketed
downsampling, which is how the manager builds fleet-wide utilization
views without shipping raw samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.tsdb import TimeSeriesDatabase, series_key


@dataclass(frozen=True)
class FederatedPoint:
    """One sample with its originating member."""

    member: str
    timestamp: float
    value: float


class TimeSeriesFederation:
    """Query fan-out across member TSDBs."""

    def __init__(self) -> None:
        self._members: Dict[str, TimeSeriesDatabase] = {}

    def register(self, name: str, tsdb: TimeSeriesDatabase) -> None:
        """Add a member store under a unique name."""
        if name in self._members:
            raise TelemetryError(f"federation member {name!r} already registered")
        self._members[name] = tsdb

    def unregister(self, name: str) -> None:
        if name not in self._members:
            raise TelemetryError(f"unknown federation member {name!r}")
        del self._members[name]

    @property
    def members(self) -> Tuple[str, ...]:
        return tuple(self._members)

    def member(self, name: str) -> TimeSeriesDatabase:
        try:
            return self._members[name]
        except KeyError:
            raise TelemetryError(f"unknown federation member {name!r}") from None

    # -- queries -------------------------------------------------------------------
    def query(
        self,
        metric: str,
        start: float = -np.inf,
        end: float = np.inf,
        tags: Optional[Mapping[str, str]] = None,
    ) -> List[FederatedPoint]:
        """All samples of ``metric`` across members, time-ordered."""
        points: List[FederatedPoint] = []
        key = series_key(metric, tags)
        for name, tsdb in self._members.items():
            if key not in tsdb.series_keys:
                continue
            times, values = tsdb.query(metric, start, end, tags)
            points.extend(
                FederatedPoint(member=name, timestamp=float(t), value=float(v))
                for t, v in zip(times, values)
            )
        points.sort(key=lambda p: (p.timestamp, p.member))
        return points

    def latest_by_member(
        self, metric: str, tags: Optional[Mapping[str, str]] = None
    ) -> Dict[str, float]:
        """Most recent value of ``metric`` per member that has it."""
        key = series_key(metric, tags)
        out: Dict[str, float] = {}
        for name, tsdb in self._members.items():
            if key in tsdb.series_keys and len(tsdb.series(metric, tags)):
                _, value = tsdb.series(metric, tags).latest()
                out[name] = value
        return out

    def aggregate_across(
        self,
        metric: str,
        aggregate: str = "mean",
        start: float = -np.inf,
        end: float = np.inf,
        tags: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Aggregate of all members' samples merged into one population
        (``nan`` when nobody has data)."""
        points = self.query(metric, start, end, tags)
        if not points:
            return float("nan")
        values = np.array([p.value for p in points])
        if aggregate == "mean":
            return float(values.mean())
        if aggregate == "max":
            return float(values.max())
        if aggregate == "min":
            return float(values.min())
        if aggregate == "sum":
            return float(values.sum())
        if aggregate == "count":
            return float(values.size)
        raise TelemetryError(f"unknown aggregate {aggregate!r}")

    def federated_downsample(
        self,
        metric: str,
        bucket_s: float,
        aggregate: str = "mean",
        start: float = -np.inf,
        end: float = np.inf,
        tags: Optional[Mapping[str, str]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Merge member samples and bucket them: the compressed
        network-wide series the manager stores in its NMDB."""
        points = self.query(metric, start, end, tags)
        if not points:
            return np.zeros(0), np.zeros(0)
        times = np.array([p.timestamp for p in points])
        values = np.array([p.value for p in points])
        buckets = np.floor(times / bucket_s).astype(np.int64)
        uniq = np.unique(buckets)
        out_t = uniq.astype(float) * bucket_s
        if aggregate == "mean":
            sums = np.zeros(uniq.size)
            counts = np.zeros(uniq.size)
            pos = np.searchsorted(uniq, buckets)
            np.add.at(sums, pos, values)
            np.add.at(counts, pos, 1.0)
            return out_t, sums / counts
        out_v = []
        for b in uniq:
            sel = values[buckets == b]
            if aggregate == "max":
                out_v.append(sel.max())
            elif aggregate == "min":
                out_v.append(sel.min())
            elif aggregate == "sum":
                out_v.append(sel.sum())
            elif aggregate == "count":
                out_v.append(float(sel.size))
            else:
                raise TelemetryError(f"unknown aggregate {aggregate!r}")
        return out_t, np.asarray(out_v, dtype=float)
