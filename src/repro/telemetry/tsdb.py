"""Time-series database with fixed-capacity ring buffers.

The DUST architecture stores agent metrics and rules in a per-node
"Time Series Database (TSDB)" and aggregates them network-wide through
a "Time-Series Federation" component (Fig. 2). This module implements
the per-node store: numpy ring buffers per series (bounded memory, the
property that makes the monitoring footprint predictable — the ~1.2 GiB
of Fig. 6), range queries, bucketed downsampling, and threshold rules.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Tuple

import numpy as np

from repro.errors import TelemetryError

#: Bytes per stored sample: float64 timestamp + float64 value.
BYTES_PER_SAMPLE = 16


def series_key(metric: str, tags: Optional[Mapping[str, str]] = None) -> str:
    """Canonical series identity: ``metric{k=v,k2=v2}`` with sorted tags."""
    if not tags:
        return metric
    inner = ",".join(f"{k}={tags[k]}" for k in sorted(tags))
    return f"{metric}{{{inner}}}"


class Series:
    """One metric stream in a fixed-capacity ring buffer."""

    __slots__ = ("key", "capacity", "_times", "_values", "_head", "_count", "total_appended")

    def __init__(self, key: str, capacity: int) -> None:
        if capacity < 1:
            raise TelemetryError(f"series capacity must be >= 1, got {capacity}")
        self.key = key
        self.capacity = capacity
        self._times = np.zeros(capacity)
        self._values = np.zeros(capacity)
        self._head = 0  # next write slot
        self._count = 0
        self.total_appended = 0

    def append(self, timestamp: float, value: float) -> None:
        """Append one sample; overwrites the oldest when full.

        Timestamps must be non-decreasing (monitoring clocks move
        forward; the simulator guarantees it).
        """
        if self._count:
            last = self._times[(self._head - 1) % self.capacity]
            if timestamp < last:
                raise TelemetryError(
                    f"timestamp {timestamp} is older than last sample {last} "
                    f"in series {self.key!r}"
                )
        self._times[self._head] = timestamp
        self._values[self._head] = value
        self._head = (self._head + 1) % self.capacity
        self._count = min(self._count + 1, self.capacity)
        self.total_appended += 1

    def __len__(self) -> int:
        return self._count

    def _ordered(self) -> Tuple[np.ndarray, np.ndarray]:
        """Samples in chronological order (copies)."""
        if self._count < self.capacity:
            idx = np.arange(self._count)
        else:
            idx = (np.arange(self.capacity) + self._head) % self.capacity
        return self._times[idx].copy(), self._values[idx].copy()

    def range(self, start: float = -np.inf, end: float = np.inf) -> Tuple[np.ndarray, np.ndarray]:
        """Samples with ``start <= t <= end`` in chronological order."""
        times, values = self._ordered()
        mask = (times >= start) & (times <= end)
        return times[mask], values[mask]

    def latest(self) -> Tuple[float, float]:
        """Most recent (timestamp, value); raises when empty."""
        if not self._count:
            raise TelemetryError(f"series {self.key!r} is empty")
        idx = (self._head - 1) % self.capacity
        return float(self._times[idx]), float(self._values[idx])

    def memory_bytes(self) -> int:
        """Buffer memory footprint (capacity, not fill, drives it)."""
        return self.capacity * BYTES_PER_SAMPLE


_AGGREGATORS: Dict[str, Callable[[np.ndarray], float]] = {
    "mean": lambda a: float(np.mean(a)),
    "max": lambda a: float(np.max(a)),
    "min": lambda a: float(np.min(a)),
    "sum": lambda a: float(np.sum(a)),
    "last": lambda a: float(a[-1]),
    "count": lambda a: float(a.size),
}


@dataclass(frozen=True)
class ThresholdRule:
    """A stored rule: fire when ``aggregate(metric over window) cmp bound``.

    The paper's Monitor Agents store "metrics and rules" in the TSDB;
    rules are how a node detects e.g. its own Busy condition locally.
    """

    name: str
    series: str
    window_s: float
    aggregate: str  # key into _AGGREGATORS
    comparison: str  # ">" or "<"
    bound: float

    def __post_init__(self) -> None:
        if self.aggregate not in _AGGREGATORS:
            raise TelemetryError(
                f"unknown aggregate {self.aggregate!r}; "
                f"expected one of {sorted(_AGGREGATORS)}"
            )
        if self.comparison not in (">", "<"):
            raise TelemetryError(f"comparison must be '>' or '<', got {self.comparison!r}")
        if self.window_s <= 0:
            raise TelemetryError(f"rule window must be positive, got {self.window_s}")


class TimeSeriesDatabase:
    """Per-node TSDB: named ring-buffer series plus threshold rules."""

    def __init__(self, name: str = "tsdb", default_capacity: int = 4096) -> None:
        if default_capacity < 1:
            raise TelemetryError(f"default capacity must be >= 1, got {default_capacity}")
        self.name = name
        self.default_capacity = default_capacity
        self._series: Dict[str, Series] = {}
        self._rules: Dict[str, ThresholdRule] = {}

    # -- series management ---------------------------------------------------------
    def create_series(
        self,
        metric: str,
        tags: Optional[Mapping[str, str]] = None,
        capacity: Optional[int] = None,
    ) -> Series:
        """Create (or return existing) series for ``metric``/``tags``."""
        key = series_key(metric, tags)
        if key not in self._series:
            self._series[key] = Series(key, capacity or self.default_capacity)
        return self._series[key]

    def series(self, metric: str, tags: Optional[Mapping[str, str]] = None) -> Series:
        key = series_key(metric, tags)
        try:
            return self._series[key]
        except KeyError:
            raise TelemetryError(f"unknown series {key!r} in TSDB {self.name!r}") from None

    def has_series(self, metric: str, tags: Optional[Mapping[str, str]] = None) -> bool:
        return series_key(metric, tags) in self._series

    @property
    def series_keys(self) -> Tuple[str, ...]:
        return tuple(self._series)

    def drop_series(self, metric: str, tags: Optional[Mapping[str, str]] = None) -> None:
        """Remove a series (frees its buffer); missing series is an error."""
        key = series_key(metric, tags)
        if key not in self._series:
            raise TelemetryError(f"unknown series {key!r} in TSDB {self.name!r}")
        del self._series[key]

    # -- writes ----------------------------------------------------------------------
    def append(
        self,
        metric: str,
        timestamp: float,
        value: float,
        tags: Optional[Mapping[str, str]] = None,
    ) -> None:
        """Append to a series, creating it on first write."""
        self.create_series(metric, tags).append(timestamp, value)

    # -- queries -----------------------------------------------------------------------
    def query(
        self,
        metric: str,
        start: float = -np.inf,
        end: float = np.inf,
        tags: Optional[Mapping[str, str]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Raw samples of one series in ``[start, end]``."""
        return self.series(metric, tags).range(start, end)

    def aggregate(
        self,
        metric: str,
        aggregate: str,
        start: float = -np.inf,
        end: float = np.inf,
        tags: Optional[Mapping[str, str]] = None,
    ) -> float:
        """Scalar aggregate over a time range (``nan`` when empty)."""
        try:
            fn = _AGGREGATORS[aggregate]
        except KeyError:
            raise TelemetryError(
                f"unknown aggregate {aggregate!r}; expected one of {sorted(_AGGREGATORS)}"
            ) from None
        _, values = self.query(metric, start, end, tags)
        if values.size == 0:
            return float("nan")
        return fn(values)

    def downsample(
        self,
        metric: str,
        bucket_s: float,
        aggregate: str = "mean",
        start: float = -np.inf,
        end: float = np.inf,
        tags: Optional[Mapping[str, str]] = None,
    ) -> Tuple[np.ndarray, np.ndarray]:
        """Bucketed aggregation: returns (bucket_start_times, values).

        This is the in-situ compression step the architecture performs
        before federating data upstream.
        """
        if bucket_s <= 0:
            raise TelemetryError(f"bucket width must be positive, got {bucket_s}")
        if aggregate not in _AGGREGATORS:
            raise TelemetryError(f"unknown aggregate {aggregate!r}")
        times, values = self.query(metric, start, end, tags)
        if times.size == 0:
            return np.zeros(0), np.zeros(0)
        buckets = np.floor(times / bucket_s).astype(np.int64)
        fn = _AGGREGATORS[aggregate]
        uniq = np.unique(buckets)
        out_t = uniq.astype(float) * bucket_s
        out_v = np.array([fn(values[buckets == b]) for b in uniq])
        return out_t, out_v

    # -- rules --------------------------------------------------------------------------
    def add_rule(self, rule: ThresholdRule) -> None:
        if rule.name in self._rules:
            raise TelemetryError(f"duplicate rule {rule.name!r}")
        self._rules[rule.name] = rule

    def remove_rule(self, name: str) -> None:
        if name not in self._rules:
            raise TelemetryError(f"unknown rule {name!r}")
        del self._rules[name]

    @property
    def rules(self) -> Tuple[ThresholdRule, ...]:
        return tuple(self._rules.values())

    def evaluate_rules(self, now: float) -> List[str]:
        """Names of rules firing at time ``now`` (empty series never fires)."""
        fired: List[str] = []
        for rule in self._rules.values():
            if rule.series not in self._series:
                continue
            times, values = self._series[rule.series].range(now - rule.window_s, now)
            if values.size == 0:
                continue
            agg = _AGGREGATORS[rule.aggregate](values)
            if (rule.comparison == ">" and agg > rule.bound) or (
                rule.comparison == "<" and agg < rule.bound
            ):
                fired.append(rule.name)
        return fired

    # -- accounting ------------------------------------------------------------------------
    def memory_bytes(self) -> int:
        """Total buffer memory across series."""
        return sum(s.memory_bytes() for s in self._series.values())

    def total_samples(self) -> int:
        return sum(s.total_appended for s in self._series.values())
