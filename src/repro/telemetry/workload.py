"""Traffic-driven DB update workload.

The monitoring load the paper measures is a function of how fast the
NOS state DB churns under data-plane traffic; 20% line-rate VxLAN
overlay traffic on the testbed drives the monitoring module to ~100%
average module CPU with ~600% spikes (Fig. 1). :class:`UpdateRateProfile`
captures per-table steady update rates at a reference traffic
intensity, and :class:`DeviceWorkloadDriver` converts an intensity time
series into Poisson-sampled update counts applied to a device DB.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Mapping, Optional

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.device import NetworkDevice

#: Steady per-table DB update rates (updates/second) at reference
#: intensity 1.0 (= the paper's 20% line-rate VxLAN workload). The split
#: is dominated by interface counters and tunnel/route churn, matching
#: how overlay traffic exercises a DC switch.
DEFAULT_TABLE_RATES: Dict[str, float] = {
    "interface_counters": 1200.0,
    "vxlan_tunnels": 500.0,
    "routes": 350.0,
    "acl_stats": 250.0,
    "asic_stats": 180.0,
    "interfaces": 150.0,
    "process_stats": 120.0,
    "system_stats": 100.0,
    "system_logs": 60.0,
    "daemons": 40.0,
    "sensors": 30.0,
    "bgp_neighbors": 25.0,
    "ospf_interfaces": 25.0,
    "lldp_neighbors": 20.0,
    "transceivers": 20.0,
    "power_supplies": 5.0,
    "fans": 5.0,
}


@dataclass(frozen=True)
class UpdateRateProfile:
    """Per-table update rates at reference intensity."""

    rates_per_s: Mapping[str, float] = field(default_factory=lambda: dict(DEFAULT_TABLE_RATES))

    def __post_init__(self) -> None:
        for table, rate in self.rates_per_s.items():
            if rate < 0:
                raise TelemetryError(f"table {table!r}: rate must be non-negative, got {rate}")

    @property
    def total_rate_per_s(self) -> float:
        return float(sum(self.rates_per_s.values()))

    def scaled(self, factor: float) -> "UpdateRateProfile":
        """A profile with every rate multiplied by ``factor``."""
        if factor < 0:
            raise TelemetryError(f"scale factor must be non-negative, got {factor}")
        return UpdateRateProfile({t: r * factor for t, r in self.rates_per_s.items()})


@dataclass
class BurstModel:
    """Occasional traffic bursts on top of the steady intensity.

    Each interval independently bursts with probability
    ``burst_probability``; during a burst the intensity multiplies by a
    draw from ``Uniform(min_multiplier, max_multiplier)``. This
    reproduces Fig. 1's shape: a ~100% average with rare multi-core
    spikes.
    """

    burst_probability: float = 0.06
    min_multiplier: float = 2.0
    max_multiplier: float = 7.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.burst_probability <= 1.0:
            raise TelemetryError("burst probability must be in [0, 1]")
        if not 1.0 <= self.min_multiplier <= self.max_multiplier:
            raise TelemetryError("burst multipliers must satisfy 1 <= min <= max")

    def sample_multiplier(self, rng: np.random.Generator) -> float:
        if rng.random() < self.burst_probability:
            return float(rng.uniform(self.min_multiplier, self.max_multiplier))
        return 1.0


class DeviceWorkloadDriver:
    """Applies traffic-driven DB churn to one device.

    Parameters
    ----------
    device:
        Target device (tables are created on demand).
    profile:
        Steady rates at intensity 1.0.
    intensity:
        Baseline traffic intensity multiplier (1.0 = reference load).
    bursts:
        Optional :class:`BurstModel`; ``None`` disables bursts.
    seed:
        RNG seed for Poisson sampling and burst draws.
    """

    def __init__(
        self,
        device: NetworkDevice,
        profile: Optional[UpdateRateProfile] = None,
        intensity: float = 1.0,
        bursts: Optional[BurstModel] = None,
        seed: Optional[int] = None,
    ) -> None:
        if intensity < 0:
            raise TelemetryError(f"intensity must be non-negative, got {intensity}")
        self.device = device
        self.profile = profile or UpdateRateProfile()
        self.intensity = intensity
        self.bursts = bursts
        self._rng = np.random.default_rng(seed)
        for table in self.profile.rates_per_s:
            device.database.ensure_table(table)
        self.last_multiplier = 1.0

    def advance(self, dt_s: float) -> int:
        """Generate one interval's DB churn; returns total updates."""
        if dt_s <= 0:
            raise TelemetryError(f"dt must be positive, got {dt_s}")
        multiplier = self.bursts.sample_multiplier(self._rng) if self.bursts else 1.0
        self.last_multiplier = multiplier
        total = 0
        effective = self.intensity * multiplier
        for table, rate in self.profile.rates_per_s.items():
            lam = rate * effective * dt_s
            count = int(self._rng.poisson(lam)) if lam > 0 else 0
            if count:
                self.device.database.record_synthetic_updates(table, count)
                total += count
        return total
