"""Network device resource model: CPU/memory accounting for monitoring.

A :class:`NetworkDevice` bundles the per-node substrate — a
:class:`~repro.telemetry.database.StateDatabase` (the NOS state DB), a
:class:`~repro.telemetry.tsdb.TimeSeriesDatabase`, and a set of
:class:`~repro.telemetry.agents.MonitorAgent` — and converts monitoring
work into the two signals the paper measures:

* **module-level CPU%** — CPU seconds spent by the monitoring module
  per wall second × 100 (one core ≡ 100%, so an 8-core device can show
  up to 800%; Fig. 1's 600% spikes use this convention);
* **device-level CPU%** — total busy cores / total cores × 100
  (Fig. 6's 31% → 15% numbers use this convention).

Offloading support mirrors DUST's mechanism: a local agent can be
*offloaded*, which detaches it and installs a lightweight
:class:`ExportStub` that forwards DB update counts to the destination
device, where a :class:`RemoteAgentRuntime` performs the analytics at
the same per-update cost.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Tuple

from repro.errors import TelemetryError
from repro.telemetry.agents import MonitorAgent, MonitorAgentSpec
from repro.telemetry.database import StateDatabase
from repro.telemetry.tsdb import TimeSeriesDatabase

#: CPU cost of forwarding one DB update through an export stub (ms).
STUB_CPU_MS_PER_UPDATE = 0.01
#: Resident footprint of one export stub process (MB).
STUB_MEMORY_MB = 5.0
#: Approximate wire size of one exported update (bytes) — drives the
#: offloaded monitoring data volume D_i.
EXPORT_BYTES_PER_UPDATE = 256


@dataclass(frozen=True)
class DeviceProfile:
    """Static hardware description of a device."""

    name: str
    cores: int
    memory_gb: float
    base_cpu_pct: float  # device-level CPU% used by switching/NOS duties
    base_memory_mb: float  # resident memory of the NOS itself

    def __post_init__(self) -> None:
        if self.cores < 1:
            raise TelemetryError(f"device {self.name!r}: cores must be >= 1")
        if self.memory_gb <= 0:
            raise TelemetryError(f"device {self.name!r}: memory must be positive")
        if not 0.0 <= self.base_cpu_pct <= 100.0:
            raise TelemetryError(f"device {self.name!r}: base CPU% must be in [0, 100]")
        if self.base_memory_mb < 0:
            raise TelemetryError(f"device {self.name!r}: base memory must be >= 0")

    @property
    def memory_mb(self) -> float:
        return self.memory_gb * 1024.0


@dataclass
class TelemetryShipment:
    """One interval's exported update counts for an offloaded agent."""

    source_device: str
    agent_name: str
    updates: int
    data_mb: float
    timestamp: float


@dataclass
class IntervalSample:
    """Resource measurements for one collection interval."""

    timestamp: float
    monitoring_cpu_pct: float  # module-level (100% == one core)
    device_cpu_pct: float  # device-level (100% == all cores)
    memory_pct: float
    monitoring_memory_mb: float
    updates_processed: int


class ExportStub:
    """Light forwarder left behind when an agent is offloaded."""

    def __init__(self, spec: MonitorAgentSpec, database: StateDatabase) -> None:
        self.spec = spec
        self.database = database
        self._pending = 0
        for table in spec.tables:
            database.ensure_table(table)
            database.subscribe(table, self._on_update)
            database.subscribe_bulk(table, self._on_bulk)

    def _on_update(self, table: str, key: str, row: Mapping[str, object]) -> None:
        self._pending += 1

    def _on_bulk(self, table: str, count: int) -> None:
        self._pending += count

    def detach(self) -> None:
        for table in self.spec.tables:
            self.database.unsubscribe(table, self._on_update)
            self.database.unsubscribe_bulk(table, self._on_bulk)

    def drain(self, source: str, now: float) -> Tuple[float, TelemetryShipment]:
        """Collect the window's updates: returns (cpu_seconds, shipment)."""
        updates = self._pending
        self._pending = 0
        cpu_s = updates * STUB_CPU_MS_PER_UPDATE / 1000.0
        data_mb = updates * EXPORT_BYTES_PER_UPDATE * 8 / 1e6  # megabits
        return cpu_s, TelemetryShipment(
            source_device=source,
            agent_name=self.spec.name,
            updates=updates,
            data_mb=data_mb,
            timestamp=now,
        )


class RemoteAgentRuntime:
    """Destination-side execution of an offloaded agent.

    Charges the same analytic cost per shipped update as the local
    agent would have (the paper's homogeneity assumption) and stores
    the resulting series in the *destination* TSDB tagged with the
    source device.
    """

    def __init__(self, spec: MonitorAgentSpec, source_device: str, tsdb: TimeSeriesDatabase) -> None:
        self.spec = spec
        self.source_device = source_device
        self.tsdb = tsdb
        self._pending_updates = 0
        self.total_updates_processed = 0

    def deliver(self, shipment: TelemetryShipment) -> None:
        if shipment.agent_name != self.spec.name or shipment.source_device != self.source_device:
            raise TelemetryError(
                f"shipment for {shipment.source_device}/{shipment.agent_name} "
                f"delivered to runtime for {self.source_device}/{self.spec.name}"
            )
        self._pending_updates += shipment.updates

    def run_interval(self, now: float) -> float:
        """Process shipped updates; returns CPU seconds consumed."""
        updates = self._pending_updates
        self._pending_updates = 0
        self.total_updates_processed += updates
        cpu_ms = self.spec.cpu_ms_per_interval + self.spec.cpu_ms_per_update * updates
        tags = {"source": self.source_device}
        for metric in self.spec.emits:
            self.tsdb.append(metric, now, float(updates), tags=tags)
        return cpu_ms / 1000.0


class NetworkDevice:
    """A monitored device: substrate + agents + resource accounting."""

    def __init__(self, profile: DeviceProfile, tsdb_capacity: int = 4096) -> None:
        self.profile = profile
        self.database = StateDatabase(name=f"{profile.name}-db")
        self.tsdb = TimeSeriesDatabase(name=f"{profile.name}-tsdb", default_capacity=tsdb_capacity)
        self._agents: Dict[str, MonitorAgent] = {}
        self._stubs: Dict[str, ExportStub] = {}
        self._remote: Dict[Tuple[str, str], RemoteAgentRuntime] = {}
        self._outbox: List[TelemetryShipment] = []
        self.history: List[IntervalSample] = []

    # -- agent lifecycle ----------------------------------------------------------
    def install_agent(self, spec: MonitorAgentSpec) -> MonitorAgent:
        """Install and attach a local monitoring agent."""
        if spec.name in self._agents or spec.name in self._stubs:
            raise TelemetryError(
                f"agent {spec.name!r} already present on device {self.profile.name!r}"
            )
        agent = MonitorAgent(spec, self.database, self.tsdb, tags={"device": self.profile.name})
        agent.attach()
        self._agents[spec.name] = agent
        return agent

    def offload_agent(self, name: str) -> MonitorAgentSpec:
        """Replace a local agent with an export stub; returns the spec so
        the caller can install a :class:`RemoteAgentRuntime` elsewhere."""
        try:
            agent = self._agents.pop(name)
        except KeyError:
            raise TelemetryError(
                f"agent {name!r} is not running locally on {self.profile.name!r}"
            ) from None
        agent.detach()
        self._stubs[name] = ExportStub(agent.spec, self.database)
        return agent.spec

    def reclaim_agent(self, name: str) -> None:
        """Undo an offload: remove the stub and re-install the agent
        locally (the Busy node "reclaims its local resources")."""
        try:
            stub = self._stubs.pop(name)
        except KeyError:
            raise TelemetryError(f"agent {name!r} is not offloaded from {self.profile.name!r}") from None
        stub.detach()
        self.install_agent(stub.spec)

    def host_remote_agent(self, spec: MonitorAgentSpec, source_device: str) -> RemoteAgentRuntime:
        """Become the offload destination for ``source_device``'s agent."""
        key = (source_device, spec.name)
        if key in self._remote:
            raise TelemetryError(
                f"already hosting {spec.name!r} for {source_device!r} on {self.profile.name!r}"
            )
        runtime = RemoteAgentRuntime(spec, source_device, self.tsdb)
        self._remote[key] = runtime
        return runtime

    def evict_remote_agent(self, spec_name: str, source_device: str) -> None:
        """Stop hosting a remote agent (e.g. REP replica replacement)."""
        try:
            del self._remote[(source_device, spec_name)]
        except KeyError:
            raise TelemetryError(
                f"not hosting {spec_name!r} for {source_device!r} on {self.profile.name!r}"
            ) from None

    # -- introspection ---------------------------------------------------------------
    @property
    def local_agents(self) -> Tuple[str, ...]:
        return tuple(self._agents)

    @property
    def offloaded_agents(self) -> Tuple[str, ...]:
        return tuple(self._stubs)

    @property
    def remote_agents(self) -> Tuple[Tuple[str, str], ...]:
        return tuple(self._remote)

    def deliver(self, shipment: TelemetryShipment) -> None:
        """Accept an exported-telemetry shipment for a hosted agent."""
        key = (shipment.source_device, shipment.agent_name)
        try:
            self._remote[key].deliver(shipment)
        except KeyError:
            raise TelemetryError(
                f"device {self.profile.name!r} does not host "
                f"{shipment.agent_name!r} for {shipment.source_device!r}"
            ) from None

    def drain_outbox(self) -> List[TelemetryShipment]:
        """Shipments produced by stubs during the last interval."""
        out, self._outbox = self._outbox, []
        return out

    # -- resource accounting ------------------------------------------------------------
    def monitoring_memory_mb(self) -> float:
        """Resident memory of the monitoring workload on this device."""
        agents_mb = sum(a.spec.memory_mb for a in self._agents.values())
        stubs_mb = STUB_MEMORY_MB * len(self._stubs)
        remote_mb = sum(r.spec.memory_mb for r in self._remote.values())
        tsdb_mb = self.tsdb.memory_bytes() / 1e6
        return agents_mb + stubs_mb + remote_mb + tsdb_mb

    def memory_pct(self) -> float:
        """Device memory utilization in percent."""
        used = self.profile.base_memory_mb + self.monitoring_memory_mb()
        return min(100.0, 100.0 * used / self.profile.memory_mb)

    def step(self, now: float, interval_s: float) -> IntervalSample:
        """Close one collection interval: run agents/stubs/remotes,
        account CPU, and append an :class:`IntervalSample`."""
        if interval_s <= 0:
            raise TelemetryError(f"interval must be positive, got {interval_s}")
        cpu_s = 0.0
        updates = 0
        for agent in self._agents.values():
            before = agent.total_updates_processed
            cpu_s += agent.run_interval(now)
            updates += agent.total_updates_processed - before
        for name, stub in self._stubs.items():
            stub_cpu, shipment = stub.drain(self.profile.name, now)
            cpu_s += stub_cpu
            updates += shipment.updates
            self._outbox.append(shipment)
        for runtime in self._remote.values():
            before = runtime.total_updates_processed
            cpu_s += runtime.run_interval(now)
            updates += runtime.total_updates_processed - before

        # Module CPU% uses the `top`-style convention (one core == 100%)
        # and saturates at the physical core count.
        monitoring_cpu_pct = min(100.0 * cpu_s / interval_s, 100.0 * self.profile.cores)
        base_cores = self.profile.base_cpu_pct / 100.0 * self.profile.cores
        busy_cores = min(base_cores + cpu_s / interval_s, float(self.profile.cores))
        device_cpu_pct = 100.0 * busy_cores / self.profile.cores
        sample = IntervalSample(
            timestamp=now,
            monitoring_cpu_pct=monitoring_cpu_pct,
            device_cpu_pct=device_cpu_pct,
            memory_pct=self.memory_pct(),
            monitoring_memory_mb=self.monitoring_memory_mb(),
            updates_processed=updates,
        )
        self.history.append(sample)
        return sample
