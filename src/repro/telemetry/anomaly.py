"""Streaming anomaly detection for monitor-agent analytics.

The paper motivates in-device telemetry with "predicting failures in
advance" and ships a *fault finder* agent; this module provides the
analytics those agents run over TSDB series:

* :class:`EwmaDetector` — exponentially-weighted mean/variance with a
  z-score threshold (classic streaming detector, O(1) per sample);
* :class:`RateOfChangeDetector` — flags derivative spikes (interface
  error bursts, tunnel churn storms);
* :func:`scan_series` — run a detector over a stored TSDB series and
  return the anomalous timestamps.

Detectors are deliberately allocation-free per sample so they can sit
on the device's hot path at line-rate update frequencies.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import TelemetryError
from repro.telemetry.tsdb import TimeSeriesDatabase


@dataclass
class AnomalyEvent:
    """One flagged sample."""

    timestamp: float
    value: float
    score: float  # detector-specific magnitude (z-score, rate ratio...)


class EwmaDetector:
    """EWMA mean/variance z-score detector.

    Maintains ``mean`` and ``var`` with decay ``alpha``; a sample is
    anomalous when ``|x - mean| / std > threshold`` *after* the warmup
    count (scores during warmup are suppressed, not just unreliable).
    """

    def __init__(
        self,
        alpha: float = 0.1,
        threshold: float = 3.0,
        warmup: int = 10,
        min_std: float = 1e-9,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise TelemetryError(f"alpha must be in (0, 1], got {alpha}")
        if threshold <= 0:
            raise TelemetryError(f"threshold must be positive, got {threshold}")
        if warmup < 0:
            raise TelemetryError(f"warmup must be non-negative, got {warmup}")
        self.alpha = alpha
        self.threshold = threshold
        self.warmup = warmup
        self.min_std = min_std
        self._mean = 0.0
        self._var = 0.0
        self._count = 0

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def std(self) -> float:
        return math.sqrt(max(self._var, 0.0))

    @property
    def samples_seen(self) -> int:
        return self._count

    def update(self, value: float) -> float:
        """Ingest one sample; returns its anomaly score (0 in warmup).

        The score is computed against the *pre-update* statistics so an
        anomalous sample does not dilute its own detection.
        """
        score = 0.0
        if self._count >= self.warmup:
            std = max(self.std, self.min_std)
            score = abs(value - self._mean) / std
        if self._count == 0:
            self._mean = value
            self._var = 0.0
        else:
            delta = value - self._mean
            self._mean += self.alpha * delta
            self._var = (1.0 - self.alpha) * (self._var + self.alpha * delta * delta)
        self._count += 1
        return score

    def is_anomalous(self, value: float) -> bool:
        """Ingest and threshold in one call."""
        return self.update(value) > self.threshold


class RateOfChangeDetector:
    """Flags samples whose per-second derivative exceeds a bound."""

    def __init__(self, max_rate_per_s: float) -> None:
        if max_rate_per_s <= 0:
            raise TelemetryError(f"max rate must be positive, got {max_rate_per_s}")
        self.max_rate_per_s = max_rate_per_s
        self._last: Optional[Tuple[float, float]] = None

    def update(self, timestamp: float, value: float) -> float:
        """Returns |derivative| / max_rate (>1 means anomalous)."""
        if self._last is None:
            self._last = (timestamp, value)
            return 0.0
        t0, v0 = self._last
        self._last = (timestamp, value)
        dt = timestamp - t0
        if dt <= 0:
            return 0.0
        return abs(value - v0) / dt / self.max_rate_per_s

    def is_anomalous(self, timestamp: float, value: float) -> bool:
        return self.update(timestamp, value) > 1.0


def scan_series(
    tsdb: TimeSeriesDatabase,
    metric: str,
    detector: Optional[EwmaDetector] = None,
    tags=None,
    start: float = -np.inf,
    end: float = np.inf,
) -> List[AnomalyEvent]:
    """Run an EWMA detector over a stored series; returns flagged
    samples in time order."""
    detector = detector or EwmaDetector()
    times, values = tsdb.query(metric, start, end, tags)
    events: List[AnomalyEvent] = []
    for t, v in zip(times, values):
        score = detector.update(float(v))
        if score > detector.threshold:
            events.append(AnomalyEvent(timestamp=float(t), value=float(v), score=score))
    return events
