"""Telemetry substrate: state DB, TSDB, monitor agents, device model."""

from __future__ import annotations

from repro.telemetry.agents import (
    PAPER_AGENT_MEMORY_MB,
    MonitorAgent,
    MonitorAgentSpec,
    paper_agent_specs,
)
from repro.telemetry.anomaly import AnomalyEvent, EwmaDetector, RateOfChangeDetector, scan_series
from repro.telemetry.collector import FederatedPoint, TimeSeriesFederation
from repro.telemetry.database import StateDatabase, TableStats
from repro.telemetry.device import (
    EXPORT_BYTES_PER_UPDATE,
    STUB_CPU_MS_PER_UPDATE,
    STUB_MEMORY_MB,
    DeviceProfile,
    ExportStub,
    IntervalSample,
    NetworkDevice,
    RemoteAgentRuntime,
    TelemetryShipment,
)
from repro.telemetry.tsdb import (
    BYTES_PER_SAMPLE,
    Series,
    ThresholdRule,
    TimeSeriesDatabase,
    series_key,
)
from repro.telemetry.workload import (
    DEFAULT_TABLE_RATES,
    BurstModel,
    DeviceWorkloadDriver,
    UpdateRateProfile,
)

__all__ = [
    "AnomalyEvent",
    "BYTES_PER_SAMPLE",
    "EwmaDetector",
    "RateOfChangeDetector",
    "scan_series",
    "BurstModel",
    "DEFAULT_TABLE_RATES",
    "DeviceProfile",
    "DeviceWorkloadDriver",
    "EXPORT_BYTES_PER_UPDATE",
    "ExportStub",
    "FederatedPoint",
    "IntervalSample",
    "MonitorAgent",
    "MonitorAgentSpec",
    "NetworkDevice",
    "PAPER_AGENT_MEMORY_MB",
    "RemoteAgentRuntime",
    "STUB_CPU_MS_PER_UPDATE",
    "STUB_MEMORY_MB",
    "Series",
    "StateDatabase",
    "TableStats",
    "TelemetryShipment",
    "ThresholdRule",
    "TimeSeriesDatabase",
    "TimeSeriesFederation",
    "UpdateRateProfile",
    "paper_agent_specs",
    "series_key",
]
