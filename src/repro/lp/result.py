"""Solution containers shared by every LP/ILP backend.

A backend returns a :class:`Solution` whose :class:`SolveStatus` mirrors
the vocabulary used by commercial solvers (Gurobi, CPLEX): the paper's
"Infeasible Optimization rate" experiment (Fig. 7) counts
``SolveStatus.INFEASIBLE`` outcomes over randomized network states.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Mapping


class SolveStatus(enum.Enum):
    """Terminal state of one solve call."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"
    ITERATION_LIMIT = "iteration_limit"
    ERROR = "error"

    @property
    def is_optimal(self) -> bool:
        """``True`` iff an optimal solution was found and proven."""
        return self is SolveStatus.OPTIMAL


@dataclass(frozen=True)
class Solution:
    """Outcome of solving a :class:`repro.lp.model.LinearProgram`.

    Attributes
    ----------
    status:
        Terminal solver state.
    objective:
        Objective value at the returned point; ``nan`` unless optimal.
    values:
        Mapping from variable name to its value in the solution. Empty
        unless :attr:`status` is optimal.
    backend:
        Name of the backend that produced this solution (``"simplex"``,
        ``"transportation"``, ``"scipy"``, ``"branch-and-bound"``).
    iterations:
        Backend-specific iteration count (simplex pivots, B&B nodes).
    solve_time:
        Wall-clock seconds spent inside the backend.
    """

    status: SolveStatus
    objective: float = float("nan")
    values: Mapping[str, float] = field(default_factory=dict)
    backend: str = "unknown"
    iterations: int = 0
    solve_time: float = 0.0
    #: Dual values (shadow prices) keyed by constraint name, when the
    #: backend provides them (currently the scipy/HiGHS backend for
    #: continuous LPs). For a `<=` capacity row the dual is ≤ 0: the
    #: objective decreases by |dual| per unit of extra capacity.
    duals: Mapping[str, float] = field(default_factory=dict)
    #: Backend-specific warm-start handle for the next solve: the
    #: transportation backend stores its final
    #: :class:`~repro.lp.transportation.TransportationBasis`, the dense
    #: simplex a tuple of basic variable names. ``None`` when the
    #: backend has nothing reusable (non-optimal exit, scipy backend).
    basis: object = None
    #: Sum of simplex pivots across every relaxation a composite solver
    #: ran (branch-and-bound reports the whole tree here); equals
    #: :attr:`iterations` for single-solve backends that set it.
    total_pivots: int = 0
    #: True when the backend actually started from a supplied warm
    #: basis; False when no hint was given or the hint was rejected.
    warm_started: bool = False

    def __getitem__(self, name: str) -> float:
        """Convenience accessor: ``solution["x_0_1"]``."""
        return self.values[name]

    def value(self, name: str, default: float = 0.0) -> float:
        """Value of variable ``name``, or ``default`` if absent."""
        return self.values.get(name, default)
