"""Distributed transportation solve: zone subproblems + a thin price coordinator.

DUST's zones (:mod:`repro.core.zoning`) already fan route pricing out,
but a single manager still owns the whole placement LP — ROADMAP open
item 1. This module decomposes the Eq. 3 transportation solve across
*zone managers* in the spirit of the distributed transportation simplex
(Coutinho et al.) and ADMM-style consensus price exchange:

* each **zone** owns its busy rows (their supplies and full cost rows,
  i.e. the Trmin pricing work, which dominates wall-clock) and its
  candidate columns (their capacities). It solves its *local*
  subproblem — its busy rows against its own candidates — exactly, via
  a warm-started solve, and afterwards only ever *prices* its rows
  against broadcast duals;
* a **thin coordinator** owns no cost matrix — just the global basis
  tree (``m + n + 1`` cells), the flows that tree carries, and the dual
  prices it implies. Per iteration it broadcasts boundary duals
  ``(u, v)``, collects each zone's most-violated lanes as *bids*,
  applies the winning pivots locally, and repeats until no zone can
  improve (exact optimum) or a certified duality gap bound is met.

The coordination loop is exactly a transportation simplex with
distributed candidate-list pricing, so the converged objective equals
the centralized :func:`repro.lp.transportation.solve_transportation`
optimum — not approximately, but as the same LP optimum reached by a
different pivot order. On top of that, every round carries a certified
*Lagrangian lower bound* assembled from per-zone row minima under the
consensus capacity prices ``λ_j = max(0, -v_j)``, so early termination
at a bounded relative gap (``gap_tol``) is available when exactness is
not worth the extra rounds.

Balanced coordinates: the real ``m × n`` problem gains a *dummy supply
row* ``m`` (absorbing spare capacity at zero cost) and an *artificial
column* ``n`` (absorbing unplaceable load at Big-M cost), both owned by
the coordinator — this guarantees a valid starting tree even before any
zone reports, and makes infeasibility show up as artificial flow, the
same post-hoc detection the centralized solver applies to forbidden
lanes.

Message schemas (:class:`ZoneProfile`, :class:`PriceUpdate`,
:class:`LaneBids`, :class:`FlowAssignment`) are frozen dataclasses with
explicit epochs, so the protocol is idempotent under duplication, loss
and reordering — the networked driver in
:mod:`repro.simulation.distributed` runs these rounds over a
:class:`~repro.simulation.network_sim.FaultyNetwork` and message loss
degrades to retransmissions and extra rounds, never to a wrong answer.
The full protocol specification, state machine and a worked k=4
example live in ``docs/distributed_solve.md``.
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.lp.result import SolveStatus
from repro.lp.transportation import (
    TransportationBasis,
    TransportationProblem,
    _BasisTree,
    _UnionFind,
    solve_transportation,
)
from repro.obs import get_registry, trace_span

__all__ = [
    "DistributedSolveResult",
    "FlowAssignment",
    "LaneBids",
    "PriceUpdate",
    "ZoneProfile",
    "ZoneWorker",
    "DistributedCoordinator",
    "extract_zone_subproblems",
    "run_protocol",
    "solve_distributed",
]

_EPS = 1e-9
#: Same relative reduced-cost tolerance as the centralized solver.
_OPT_TOL = 1e-7
#: Flow on a forbidden lane / the artificial column above this means
#: the real problem is infeasible (mirrors the centralized check).
_FLOW_TOL = 1e-6

#: Accepted price-coordination rules (see :class:`DistributedCoordinator`).
PRICE_RULES = ("block", "dantzig")


# -- protocol messages -------------------------------------------------------------


@dataclass(frozen=True)
class ZoneProfile:
    """Phase-1 report: one zone's subproblem shape and local presolve.

    Parameters
    ----------
    zone_id : int
        Stable identifier of the reporting zone.
    rows : tuple of int
        Global busy-row indices this zone owns (disjoint across zones).
    cols : tuple of int
        Global candidate-column indices this zone owns.
    supplies : tuple of float
        ``s_i`` per entry of ``rows`` (same order).
    capacities : tuple of float
        ``d_j`` per entry of ``cols`` (same order).
    max_finite_cost : float
        Largest finite cost in the zone's rows; the coordinator derives
        the global Big-M from the max over zones. ``0.0`` for a zone
        with no finite lane.
    basis_cells : tuple of (int, int, float)
        Spanning-tree cells ``(row, col, cost)`` of the zone's local
        warm-started presolve, in *global* coordinates (local dummy
        rows dropped; ``inf`` costs mark forbidden lanes). The
        coordinator merges these into the initial global basis so the
        price iterations start near the local optima.
    local_objective : float
        Objective of the local presolve (``nan`` when skipped).
    local_feasible : bool
        Whether the zone could place its own load within its own
        candidates — ``False`` zones are exactly the ones that need
        cross-zone lanes.
    presolve_warm_started : bool
        Whether the local solve actually reused a warm basis.
    """

    zone_id: int
    rows: Tuple[int, ...]
    cols: Tuple[int, ...]
    supplies: Tuple[float, ...]
    capacities: Tuple[float, ...]
    max_finite_cost: float
    basis_cells: Tuple[Tuple[int, int, float], ...] = ()
    local_objective: float = float("nan")
    local_feasible: bool = True
    presolve_warm_started: bool = False


@dataclass(frozen=True)
class PriceUpdate:
    """Coordinator → zone: boundary duals for one pricing epoch.

    Parameters
    ----------
    epoch : int
        Monotonic round number; a zone answers each epoch at most once
        and the coordinator discards bids from stale epochs, which
        makes the exchange idempotent under duplication and reordering.
    u : tuple of float
        Supply potentials for the *receiving zone's* rows only (the
        update is tailored per zone; rows are in the zone's
        ``profile.rows`` order).
    v : tuple of float
        Capacity potentials for all real columns, in global order.
        ``λ_j = max(0, -v_j)`` is the consensus capacity price used
        for the Lagrangian bound.
    big_m : float
        Global cost for forbidden (no-route) lanes, shared by every
        zone so reduced costs are comparable.
    max_bids : int
        Price-coordination rule knob: how many improving lanes the
        zone may bid this epoch (1 under the ``dantzig`` rule, a block
        under ``block``).
    terminate : bool
        True on the final update: the zone should stop pricing and
        await its :class:`FlowAssignment`.
    """

    epoch: int
    u: Tuple[float, ...]
    v: Tuple[float, ...]
    big_m: float
    max_bids: int = 16
    terminate: bool = False


@dataclass(frozen=True)
class LaneBids:
    """Zone → coordinator: the zone's most-violated lanes for an epoch.

    Parameters
    ----------
    zone_id, epoch : int
        Echo of the :class:`PriceUpdate` being answered.
    bids : tuple of (int, int, float, bool)
        Up to ``max_bids`` cells ``(row, col, cost, forbidden)`` whose
        reduced cost ``c_ij - u_i - v_j`` is negative beyond tolerance,
        most negative first. Empty when the zone's rows are fully
        priced out — the zone votes "converged".
    best_reduced : float
        The zone's most negative raw reduced cost (``0.0`` when none).
    lower_bound_term : float
        ``Σ_i s_i · min_j (c_ij + λ_j)`` over the zone's rows — its
        additive share of the global Lagrangian lower bound under the
        epoch's consensus prices.
    """

    zone_id: int
    epoch: int
    bids: Tuple[Tuple[int, int, float, bool], ...] = ()
    best_reduced: float = 0.0
    lower_bound_term: float = 0.0


@dataclass(frozen=True)
class FlowAssignment:
    """Coordinator → zone: the zone's rows of the converged global flow.

    Parameters
    ----------
    zone_id, epoch : int
        Addressee and the terminal epoch.
    status : SolveStatus
        Terminal status of the global solve.
    flows : tuple of (int, int, float)
        ``(row, col, amount)`` for every positive flow leaving one of
        the zone's busy rows (global coordinates; empty when the solve
        did not end optimal).
    objective : float
        Global objective (``nan`` when not optimal).
    gap : float
        Final certified relative duality gap.
    """

    zone_id: int
    epoch: int
    status: SolveStatus
    flows: Tuple[Tuple[int, int, float], ...] = ()
    objective: float = float("nan")
    gap: float = float("nan")


# -- results -----------------------------------------------------------------------


@dataclass(frozen=True)
class DistributedSolveResult:
    """Outcome of one distributed transportation solve.

    Attributes
    ----------
    status : SolveStatus
        ``OPTIMAL`` (converged; ``gap`` certifies how tightly),
        ``INFEASIBLE`` (load left on artificial/forbidden lanes) or
        ``ITERATION_LIMIT`` (round/pivot budget exhausted).
    flow : numpy.ndarray
        ``(m, n)`` optimal flow in the original coordinates (zeros
        when not optimal).
    objective : float
        Global objective; matches the centralized solver's optimum.
    gap : float
        Certified relative duality gap ``(UB - LB) / max(1, |UB|)`` at
        termination (``0.0``-ish at exact optimality).
    rounds : int
        Price-exchange epochs run.
    pivots : int
        Coordinator pivots applied across all rounds.
    bids_received : int
        Lane bids accepted from zones (stale ones excluded).
    zone_count : int
        Number of participating zones.
    messages : int
        Protocol messages exchanged (profiles + updates + bids +
        assignments) by the in-process driver; the networked driver
        reports its own (larger, loss-inflated) count.
    local_objective : float
        Sum of feasible zones' presolve objectives — the "no
        cross-zone lanes" baseline the price iterations improve on.
    presolve_warm_hits : int
        Zones whose local presolve reused a warm basis.
    coordinator_seconds : float
        Wall time spent in coordinator-side merge/pivot work.
    zone_seconds : dict of int to float
        Wall time per zone (presolve + all pricing calls).
    critical_path_seconds : float
        Modeled parallel wall-clock: coordinator time plus the slowest
        zone — zones price concurrently in a real deployment, the same
        reading as ``ZonedPlacementReport.max_zone_seconds``.
    """

    status: SolveStatus
    flow: np.ndarray
    objective: float
    gap: float
    rounds: int
    pivots: int
    bids_received: int
    zone_count: int
    messages: int
    local_objective: float = float("nan")
    presolve_warm_hits: int = 0
    coordinator_seconds: float = 0.0
    zone_seconds: Dict[int, float] = field(default_factory=dict)
    critical_path_seconds: float = 0.0

    @property
    def feasible(self) -> bool:
        return self.status.is_optimal


# -- zone side ---------------------------------------------------------------------


class ZoneWorker:
    """One zone manager's side of the distributed solve.

    Owns the zone's busy rows — their supplies and *full-width* cost
    rows (every candidate column, so cross-zone lanes can be priced) —
    plus the capacities of the zone's own candidate columns. All the
    Θ(m_z·n) pricing work happens here; the coordinator never sees a
    cost matrix.

    Parameters
    ----------
    zone_id : int
        Stable zone identifier.
    rows : sequence of int
        Global busy-row indices owned by this zone.
    cols : sequence of int
        Global candidate-column indices owned by this zone.
    cost_rows : numpy.ndarray
        ``(len(rows), n)`` costs of the zone's rows against *all*
        ``n`` global columns; ``inf`` marks forbidden lanes.
    supplies : sequence of float
        ``s_i`` per row (``rows`` order).
    capacities : sequence of float
        ``d_j`` per owned column (``cols`` order).
    presolved : tuple, optional
        Externally solved local subproblem
        ``(basis_cells, objective, feasible, warm_started)`` with
        cells in global ``(row, col, cost)`` coordinates — supplied by
        :class:`repro.core.zoning.DistributedPlacementEngine`, which
        solves the local block through a warm-started
        ``PlacementSession``. When omitted, :meth:`profile` runs its
        own :func:`~repro.lp.transportation.solve_transportation`
        presolve, warm-started from this worker's previous solve.
    """

    def __init__(
        self,
        zone_id: int,
        rows: Sequence[int],
        cols: Sequence[int],
        cost_rows: np.ndarray,
        supplies: Sequence[float],
        capacities: Sequence[float],
        presolved: Optional[Tuple] = None,
    ) -> None:
        self.zone_id = int(zone_id)
        self.rows = tuple(int(r) for r in rows)
        self.cols = tuple(int(c) for c in cols)
        self.cost_rows = np.asarray(cost_rows, dtype=float)
        self.supplies = np.asarray(supplies, dtype=float)
        self.capacities = np.asarray(capacities, dtype=float)
        if self.cost_rows.shape[0] != len(self.rows):
            raise SolverError(
                f"zone {zone_id}: cost_rows has {self.cost_rows.shape[0]} rows, "
                f"expected {len(self.rows)}"
            )
        if self.supplies.shape != (len(self.rows),):
            raise SolverError(f"zone {zone_id}: supplies shape mismatch")
        if self.capacities.shape != (len(self.cols),):
            raise SolverError(f"zone {zone_id}: capacities shape mismatch")
        self._presolved = presolved
        self._warm: Optional[TransportationBasis] = None
        self.seconds = 0.0
        self.final_flows: Tuple[Tuple[int, int, float], ...] = ()
        self.final_status: Optional[SolveStatus] = None

    # -- phase 1: local presolve ---------------------------------------------------
    def _local_presolve(self) -> Tuple[Tuple, float, bool, bool]:
        """Solve the zone-local block (own rows × own cols) exactly.

        A zone whose load exceeds its own spare capacity solves a
        supply-clipped variant instead — the point of the presolve is a
        good starting *tree*, and the global iterations restore the
        full supplies immediately.
        """
        m_z, n_z = len(self.rows), len(self.cols)
        if m_z == 0 or n_z == 0 or float(self.supplies.sum()) <= _EPS:
            return (), float("nan"), n_z > 0 or m_z == 0, False
        local_cost = self.cost_rows[:, list(self.cols)]
        supplies = self.supplies
        total_s, total_d = float(supplies.sum()), float(self.capacities.sum())
        feasible_shape = total_s <= total_d + _EPS
        if not feasible_shape:
            if total_d <= _EPS:
                return (), float("nan"), False, False
            supplies = supplies * (total_d / total_s) * (1.0 - 1e-12)
        result = solve_transportation(
            TransportationProblem(supplies, self.capacities, local_cost),
            warm_start=self._warm,
        )
        if result.basis is None:
            return (), float("nan"), False, result.warm_started
        self._warm = result.basis
        cells: List[Tuple[int, int, float]] = []
        for i, j in result.basis.cells:
            if i >= m_z:  # local dummy row — coordinator has its own
                continue
            cells.append(
                (self.rows[i], self.cols[j], float(local_cost[i, j]))
            )
        feasible = feasible_shape and result.status.is_optimal
        objective = result.objective if result.status.is_optimal else float("nan")
        return tuple(cells), objective, feasible, result.warm_started

    def profile(self) -> ZoneProfile:
        """Build the zone's :class:`ZoneProfile` (runs the presolve)."""
        start = time.perf_counter()
        if self._presolved is not None:
            cells, objective, feasible, warm = self._presolved
        else:
            cells, objective, feasible, warm = self._local_presolve()
        finite = self.cost_rows[np.isfinite(self.cost_rows)]
        profile = ZoneProfile(
            zone_id=self.zone_id,
            rows=self.rows,
            cols=self.cols,
            supplies=tuple(float(s) for s in self.supplies),
            capacities=tuple(float(d) for d in self.capacities),
            max_finite_cost=float(finite.max()) if finite.size else 0.0,
            basis_cells=tuple(cells),
            local_objective=float(objective),
            local_feasible=bool(feasible),
            presolve_warm_started=bool(warm),
        )
        self.seconds += time.perf_counter() - start
        return profile

    # -- iteration: pricing ----------------------------------------------------------
    def price(self, update: PriceUpdate) -> LaneBids:
        """Price this zone's rows against broadcast duals; bid violations.

        Parameters
        ----------
        update : PriceUpdate
            The epoch's duals — ``u`` tailored to this zone's rows,
            ``v`` global.

        Returns
        -------
        LaneBids
            Up to ``update.max_bids`` most-violated lanes plus the
            zone's Lagrangian lower-bound share. Re-pricing the same
            epoch returns an identical answer (pure function of the
            update), which is what makes retransmission safe.
        """
        start = time.perf_counter()
        m_z = len(self.rows)
        if m_z == 0:
            return LaneBids(zone_id=self.zone_id, epoch=update.epoch)
        u = np.asarray(update.u, dtype=float)
        v = np.asarray(update.v, dtype=float)
        forbidden = ~np.isfinite(self.cost_rows)
        cost = np.where(forbidden, update.big_m, self.cost_rows)
        reduced = cost - u[:, None] - v[None, :]
        lam = np.maximum(0.0, -v)
        lower = float((self.supplies * (cost + lam[None, :]).min(axis=1)).sum())
        violating = reduced < -_OPT_TOL * (1.0 + np.abs(cost))
        bids: List[Tuple[int, int, float, bool]] = []
        best = 0.0
        if violating.any():
            flat = np.flatnonzero(violating.ravel())
            order = flat[np.argsort(reduced.ravel()[flat])]
            best = float(reduced.ravel()[order[0]])
            n = self.cost_rows.shape[1]
            for idx in order[: max(1, int(update.max_bids))]:
                a, b = divmod(int(idx), n)
                bids.append(
                    (self.rows[a], int(b), float(cost[a, b]), bool(forbidden[a, b]))
                )
        self.seconds += time.perf_counter() - start
        return LaneBids(
            zone_id=self.zone_id,
            epoch=update.epoch,
            bids=tuple(bids),
            best_reduced=best,
            lower_bound_term=lower,
        )

    def accept(self, assignment: FlowAssignment) -> None:
        """Record the final flows for this zone's rows (idempotent)."""
        self.final_flows = assignment.flows
        self.final_status = assignment.status


# -- coordinator -------------------------------------------------------------------


def _sparse_tree_flows(
    cells: Sequence[Tuple[int, int]],
    mb: int,
    nb: int,
    supply_b: np.ndarray,
    demand_b: np.ndarray,
) -> Optional[Dict[Tuple[int, int], float]]:
    """Leaf-elimination flows of a spanning tree, without a dense matrix.

    Sparse analogue of the centralized solver's ``_tree_flows``:
    returns ``None`` when the tree would need a negative flow (the
    merged zone bases don't fit the global balance), in which case the
    coordinator falls back to its trivial artificial basis.
    """
    N = mb + nb
    adjacency: List[List[int]] = [[] for _ in range(N)]
    for idx, (i, j) in enumerate(cells):
        adjacency[i].append(idx)
        adjacency[mb + j].append(idx)
    degree = np.fromiter((len(a) for a in adjacency), dtype=np.int64, count=N)
    remaining = np.concatenate([supply_b, demand_b]).astype(float)
    done = np.zeros(len(cells), dtype=bool)
    flow: Dict[Tuple[int, int], float] = {}
    leaves = deque(int(x) for x in np.flatnonzero(degree == 1))
    while leaves:
        node = leaves.popleft()
        if degree[node] != 1:
            continue
        edge = next((e for e in adjacency[node] if not done[e]), None)
        if edge is None:
            continue
        i, j = cells[edge]
        other = mb + j if node == i else i
        amount = remaining[node]
        if amount < -_FLOW_TOL:
            return None
        flow[(i, j)] = max(0.0, amount)
        remaining[node] = 0.0
        remaining[other] -= amount
        done[edge] = True
        degree[node] -= 1
        degree[other] -= 1
        if degree[other] == 1:
            leaves.append(int(other))
    if not done.all():
        return None
    if (np.abs(remaining) > _FLOW_TOL).any():
        return None
    return flow


class DistributedCoordinator:
    """The thin coordinator: basis tree, flows and duals — no costs.

    State is O(m + n): the balanced spanning tree (``m + n + 1``
    cells), the flow each basic cell carries, the cost of each *basic*
    cell (reported by the bidding zone), and the duals the tree
    implies. The dummy supply row ``m`` (cost 0) and the Big-M
    artificial column ``n`` are coordinator-owned, so it can price its
    own rows/columns without any zone traffic.

    Parameters
    ----------
    price_rule : str
        ``"block"`` (default): zones bid up to ``max_bids`` lanes per
        epoch and the coordinator applies every still-improving one —
        few rounds, slightly more speculative bids. ``"dantzig"``:
        classic most-negative single bid per zone per epoch.
    gap_tol : float, optional
        Early-termination bound on the certified relative duality gap.
        ``None`` (default) iterates to exact optimality (no zone can
        bid an improving lane).
    max_rounds : int
        Safety bound on price-exchange epochs.
    max_pivots : int
        Safety bound on total pivots (mirrors the centralized
        ``max_iter``).
    max_bids : int
        Block size under the ``block`` rule.
    """

    def __init__(
        self,
        price_rule: str = "block",
        gap_tol: Optional[float] = None,
        max_rounds: int = 10_000,
        max_pivots: int = 100_000,
        max_bids: int = 16,
    ) -> None:
        if price_rule not in PRICE_RULES:
            raise SolverError(
                f"unknown price_rule {price_rule!r}; expected one of {PRICE_RULES}"
            )
        self.price_rule = price_rule
        self.gap_tol = gap_tol
        self.max_rounds = max_rounds
        self.max_pivots = max_pivots
        self.max_bids = 1 if price_rule == "dantzig" else max_bids
        self._profiles: Dict[int, ZoneProfile] = {}
        self.epoch = -1
        self.rounds = 0
        self.pivots = 0
        self.bids_received = 0
        self.stale_bids = 0
        self.seconds = 0.0
        self.converged = False
        self.status: Optional[SolveStatus] = None
        self.upper_bound = float("nan")
        self.lower_bound = float("nan")
        self.gap = float("nan")
        self._epoch_bids: Dict[int, LaneBids] = {}
        self._tree: Optional[_BasisTree] = None
        self._flow: Dict[Tuple[int, int], float] = {}
        self._cost: Dict[Tuple[int, int], float] = {}
        self._forbidden: set = set()
        self._slot_cost: Optional[np.ndarray] = None
        self._u: Optional[np.ndarray] = None
        self._v: Optional[np.ndarray] = None
        self._epoch_v: Optional[np.ndarray] = None

    # -- setup ---------------------------------------------------------------------
    def register(self, profile: ZoneProfile) -> None:
        """Accept one zone's :class:`ZoneProfile` (idempotent per zone)."""
        self._profiles[profile.zone_id] = profile

    def initialize(self) -> None:
        """Assemble the global balanced instance from registered profiles.

        Validates that rows and columns partition across zones, derives
        the shared Big-M, merges the zones' presolve trees into the
        initial global basis (completed with coordinator-owned dummy /
        artificial cells), and computes the starting flows. Trivial and
        up-front-infeasible instances short-circuit here.
        """
        start = time.perf_counter()
        profiles = [self._profiles[z] for z in sorted(self._profiles)]
        rows: Dict[int, float] = {}
        cols: Dict[int, float] = {}
        for p in profiles:
            for r, s in zip(p.rows, p.supplies):
                if r in rows:
                    raise SolverError(f"row {r} owned by more than one zone")
                rows[r] = float(s)
            for c, d in zip(p.cols, p.capacities):
                if c in cols:
                    raise SolverError(f"column {c} owned by more than one zone")
                cols[c] = float(d)
        m, n = len(rows), len(cols)
        if sorted(rows) != list(range(m)) or sorted(cols) != list(range(n)):
            raise SolverError("zone rows/cols must partition 0..m-1 / 0..n-1")
        self.m, self.n = m, n
        self.supply = np.array([rows[i] for i in range(m)], dtype=float)
        self.demand = np.array([cols[j] for j in range(n)], dtype=float)
        total_s, total_d = float(self.supply.sum()), float(self.demand.sum())

        if m == 0 or total_s <= _EPS:
            self.converged, self.status = True, SolveStatus.OPTIMAL
            self.upper_bound = self.lower_bound = 0.0
            self.gap = 0.0
            self.seconds += time.perf_counter() - start
            return
        if n == 0 or total_s > total_d + _EPS:
            self.converged, self.status = True, SolveStatus.INFEASIBLE
            self.seconds += time.perf_counter() - start
            return

        base = max((p.max_finite_cost for p in profiles), default=1.0)
        self.big_m = (abs(base) + 1.0) * max(m, n) * 1e6
        self.art_cost = self.big_m
        self.mb, self.nb = m + 1, n + 1
        self.supply_b = np.concatenate([self.supply, [total_d]])
        self.demand_b = np.concatenate([self.demand, [total_s]])

        # Merge zone presolve trees; complete with coordinator cells.
        uf = _UnionFind(self.mb + self.nb)
        cells: List[Tuple[int, int]] = []
        for p in profiles:
            for i, j, cost in p.basis_cells:
                if 0 <= i < m and 0 <= j < n and uf.union(i, self.mb + j):
                    cells.append((i, j))
                    self._record_cost(i, j, cost)
        for j in range(n):  # dummy row reaches every real column
            if uf.union(m, self.mb + j):
                cells.append((m, j))
        for i in range(m):  # leftover rows hang off the artificial column
            if uf.union(i, self.mb + n):
                cells.append((i, n))
        if uf.union(m, self.mb + n):
            cells.append((m, n))
        flow = None
        if len(cells) == self.mb + self.nb - 1:
            flow = _sparse_tree_flows(
                cells, self.mb, self.nb, self.supply_b, self.demand_b
            )
        if flow is None:
            # Trivial artificial basis — always feasible, costs known.
            cells = [(i, n) for i in range(m)] + [(m, j) for j in range(n)]
            cells.append((m, n))
            flow = {(i, n): float(self.supply[i]) for i in range(m)}
            flow.update({(m, j): float(self.demand[j]) for j in range(n)})
            flow[(m, n)] = 0.0
        self._flow = flow
        self._tree = _BasisTree(cells, self.mb, self.nb)
        self._tree.refresh()
        self._slot_cost = np.array(
            [self._cell_cost(int(bi), int(bj))
             for bi, bj in zip(self._tree.bi, self._tree.bj)]
        )
        self._refresh_potentials()
        self.seconds += time.perf_counter() - start

    def _record_cost(self, i: int, j: int, cost: float) -> None:
        if np.isfinite(cost):
            self._cost[(i, j)] = float(cost)
        else:
            self._cost[(i, j)] = self.big_m
            self._forbidden.add((i, j))

    def _cell_cost(self, i: int, j: int) -> float:
        if i == self.m:
            return 0.0
        if j == self.n:
            return self.art_cost
        return self._cost[(i, j)]

    # -- duals ---------------------------------------------------------------------
    def _refresh_potentials(self) -> None:
        """Recompute ``u_i + v_j = c_ij`` over the tree (O(m + n))."""
        tree = self._tree
        u = np.empty(self.mb)
        v = np.empty(self.nb)
        u[0] = 0.0
        bi, bj, pcell, slot_cost = tree.bi, tree.bj, tree.pcell, self._slot_cost
        for node in tree.order[1:]:
            k = pcell[node]
            i, j = int(bi[k]), int(bj[k])
            if node < self.mb:
                u[i] = slot_cost[k] - v[j]
            else:
                v[j] = slot_cost[k] - u[i]
        # Normalize against the dummy row's zero-cost outside option:
        # reduced costs only see u_i + v_j (shift-invariant), but this
        # anchoring makes λ_j = max(0, -v_j) the true capacity dual, so
        # the Lagrangian gap closes to ~0 at optimality.
        shift = u[self.m]
        u -= shift
        v += shift
        self._u, self._v = u, v

    # -- iteration -----------------------------------------------------------------
    def price_updates(self) -> Dict[int, PriceUpdate]:
        """Open the next epoch: tailored :class:`PriceUpdate` per zone."""
        start = time.perf_counter()
        self.epoch += 1
        self.rounds += 1
        self._epoch_bids = {}
        u, v = self._u, self._v
        self._epoch_v = v.copy()
        updates = {
            p.zone_id: PriceUpdate(
                epoch=self.epoch,
                u=tuple(float(u[i]) for i in p.rows),
                v=tuple(float(x) for x in v[: self.n]),
                big_m=self.big_m,
                max_bids=self.max_bids,
            )
            for p in self._profiles.values()
        }
        self.seconds += time.perf_counter() - start
        return updates

    def submit(self, bids: LaneBids) -> bool:
        """Accept one zone's bids; stale or duplicate epochs are dropped.

        Returns
        -------
        bool
            True when the bids were accepted for the current epoch.
        """
        if bids.epoch != self.epoch or bids.zone_id in self._epoch_bids:
            self.stale_bids += 1
            return False
        self._epoch_bids[bids.zone_id] = bids
        self.bids_received += len(bids.bids)
        return True

    @property
    def epoch_complete(self) -> bool:
        """All zones answered the current epoch."""
        return len(self._epoch_bids) == len(self._profiles)

    def step(self) -> bool:
        """Close the epoch: apply pivots, update the certified gap.

        Every bid cell is re-checked against the *current* duals before
        entering (cells go stale as earlier pivots shift prices), and
        the coordinator scans its own dummy-row / artificial-column
        lanes the same way. Termination is decided here.

        Returns
        -------
        bool
            True while iteration must continue (another epoch is
            needed); False once converged or out of budget.
        """
        if self.converged:
            return False
        if not self.epoch_complete:
            raise SolverError("step() before every zone answered the epoch")
        start = time.perf_counter()
        bids = sorted(self._epoch_bids.values(), key=lambda b: b.zone_id)
        zone_improving = any(b.bids for b in bids)
        candidates: List[Tuple[int, int]] = []
        for b in bids:
            for i, j, cost, forbidden in b.bids:
                cell = (int(i), int(j))
                self._cost[cell] = float(cost)
                if forbidden:
                    self._forbidden.add(cell)
                candidates.append(cell)

        applied = 0
        while self.pivots < self.max_pivots:
            cell = self._best_entering(candidates)
            if cell is None:
                break
            self._pivot(*cell)
            applied += 1

        # Certified Lagrangian gap under this epoch's consensus prices
        # (the broadcast duals — the zones' lower-bound terms used the
        # same λ, so the bound stays valid after this round's pivots).
        lam = np.maximum(0.0, -self._epoch_v[: self.n])
        lower = sum(b.lower_bound_term for b in bids) - float(
            (lam * self.demand).sum()
        )
        upper, clean = self._objective()
        self.lower_bound = lower
        if clean:
            self.upper_bound = upper
            self.gap = max(0.0, upper - lower) / max(1.0, abs(upper))

        if not zone_improving and applied == 0:
            self.converged = True
            self.status = self._terminal_status()
        elif (
            self.gap_tol is not None
            and clean
            and np.isfinite(self.gap)
            and self.gap <= self.gap_tol
        ):
            self.converged = True
            self.status = self._terminal_status()
        elif self.rounds >= self.max_rounds or self.pivots >= self.max_pivots:
            self.converged = True
            self.status = SolveStatus.ITERATION_LIMIT
        self.seconds += time.perf_counter() - start
        return not self.converged

    def _best_entering(self, candidates: List[Tuple[int, int]]) -> Optional[Tuple[int, int]]:
        u, v = self._u, self._v
        best_cell, best_red = None, 0.0
        for cell in candidates:
            if cell in self._tree.slot:
                continue
            c = self._cost[cell]
            red = c - u[cell[0]] - v[cell[1]]
            if red < -_OPT_TOL * (1.0 + abs(c)) and red < best_red:
                best_cell, best_red = cell, red
        # Coordinator-owned lanes: dummy row (cost 0) and artificial column.
        dummy_red = -u[self.m] - v[: self.n]
        j = int(np.argmin(dummy_red))
        if dummy_red[j] < -_OPT_TOL and dummy_red[j] < best_red:
            if (self.m, j) not in self._tree.slot:
                best_cell, best_red = (self.m, j), float(dummy_red[j])
        art_red = self.art_cost - u[: self.m] - v[self.n]
        i = int(np.argmin(art_red))
        if art_red[i] < -_OPT_TOL * (1.0 + self.art_cost) and art_red[i] < best_red:
            if (i, self.n) not in self._tree.slot:
                best_cell, best_red = (i, self.n), float(art_red[i])
        # (dummy, artificial): cost-0 escape hatch that lets the dummy
        # absorb artificial flow — without it the solve can stall at a
        # fake optimum with load stranded on the Big-M column.
        corner_red = -u[self.m] - v[self.n]
        if corner_red < -_OPT_TOL and corner_red < best_red:
            if (self.m, self.n) not in self._tree.slot:
                best_cell, best_red = (self.m, self.n), float(corner_red)
        return best_cell

    def _pivot(self, ei: int, ej: int) -> None:
        cycle = self._tree.cycle(ei, ej)
        minus = cycle[1::2]
        theta = min(self._flow[c] for c in minus)
        leaving = min(
            (c for c in minus if abs(self._flow[c] - theta) <= _EPS),
            key=lambda c: (c[0], c[1]),
        )
        for pos, cell in enumerate(cycle):
            if pos % 2 == 0:
                self._flow[cell] = self._flow.get(cell, 0.0) + theta
            else:
                self._flow[cell] -= theta
        self._flow.pop(leaving, None)
        self._flow.setdefault((ei, ej), 0.0)
        self._tree.replace(leaving, (ei, ej))
        k = self._tree.slot[(ei, ej)]
        self._slot_cost[k] = self._cell_cost(ei, ej)
        self._refresh_potentials()
        self.pivots += 1

    def _objective(self) -> Tuple[float, bool]:
        """(objective over real lanes, flows-are-clean flag)."""
        total = 0.0
        clean = True
        for (i, j), amount in self._flow.items():
            if amount <= _FLOW_TOL:
                continue
            if i == self.m:
                continue  # dummy row: spare capacity, costless
            if j == self.n or (i, j) in self._forbidden:
                clean = False
                continue
            total += self._cost[(i, j)] * amount
        return total, clean

    def _terminal_status(self) -> SolveStatus:
        _, clean = self._objective()
        return SolveStatus.OPTIMAL if clean else SolveStatus.INFEASIBLE

    # -- drain ---------------------------------------------------------------------
    def assignments(self) -> Dict[int, FlowAssignment]:
        """Terminal :class:`FlowAssignment` per zone (idempotent)."""
        if not self.converged:
            raise SolverError("assignments() before convergence")
        status = self.status
        objective, _ = self._objective()
        if status is not SolveStatus.OPTIMAL:
            objective = float("nan")
        per_zone: Dict[int, List[Tuple[int, int, float]]] = {
            z: [] for z in self._profiles
        }
        if status is SolveStatus.OPTIMAL and self._tree is not None:
            owner = {}
            for p in self._profiles.values():
                for r in p.rows:
                    owner[r] = p.zone_id
            for (i, j), amount in self._flow.items():
                if i < self.m and j < self.n and amount > _FLOW_TOL:
                    per_zone[owner[i]].append((i, j, float(amount)))
        return {
            z: FlowAssignment(
                zone_id=z,
                epoch=self.epoch,
                status=status,
                flows=tuple(sorted(per_zone[z])),
                objective=objective,
                gap=self.gap if status is SolveStatus.OPTIMAL else float("nan"),
            )
            for z in self._profiles
        }

    def result(self) -> Tuple[SolveStatus, np.ndarray, float]:
        """(status, dense real flow, objective) of the converged solve."""
        if not self.converged:
            raise SolverError("result() before convergence")
        status = self.status
        flow = np.zeros((getattr(self, "m", 0), getattr(self, "n", 0)))
        objective = float("nan")
        if status is SolveStatus.OPTIMAL:
            if self._tree is not None:
                for (i, j), amount in self._flow.items():
                    if i < self.m and j < self.n and amount > _FLOW_TOL:
                        flow[i, j] = amount
            objective, _ = self._objective()
        return status, flow, objective


# -- drivers -----------------------------------------------------------------------


def extract_zone_subproblems(
    problem: TransportationProblem,
    zone_rows: Sequence[Sequence[int]],
    zone_cols: Sequence[Sequence[int]],
) -> List[ZoneWorker]:
    """Slice a global instance into per-zone :class:`ZoneWorker` objects.

    Parameters
    ----------
    problem : TransportationProblem
        The global instance (``inf`` marks forbidden lanes).
    zone_rows : sequence of sequences of int
        ``zone_rows[z]`` — global row indices owned by zone ``z``.
        Must partition ``0..m-1``.
    zone_cols : sequence of sequences of int
        ``zone_cols[z]`` — global column indices owned by zone ``z``.
        Must partition ``0..n-1``. Same length as ``zone_rows``.

    Returns
    -------
    list of ZoneWorker
        One worker per zone, each holding its full-width cost rows.
    """
    if len(zone_rows) != len(zone_cols):
        raise SolverError("zone_rows and zone_cols must have the same length")
    workers: List[ZoneWorker] = []
    for z, (rows, cols) in enumerate(zip(zone_rows, zone_cols)):
        rows = [int(r) for r in rows]
        cols = [int(c) for c in cols]
        workers.append(
            ZoneWorker(
                zone_id=z,
                rows=rows,
                cols=cols,
                cost_rows=problem.cost[rows, :],
                supplies=problem.supply[rows],
                capacities=problem.demand[cols],
            )
        )
    return workers


def solve_distributed(
    problem: TransportationProblem,
    zone_rows: Sequence[Sequence[int]],
    zone_cols: Sequence[Sequence[int]],
    price_rule: str = "block",
    gap_tol: Optional[float] = None,
    max_rounds: int = 10_000,
    max_bids: int = 16,
    workers: Optional[Sequence[ZoneWorker]] = None,
) -> DistributedSolveResult:
    """Solve a transportation instance with the distributed protocol.

    In-process driver: zones and coordinator run in one process with
    direct calls (the networked, fault-tolerant driver lives in
    :mod:`repro.simulation.distributed`). The converged objective
    equals :func:`~repro.lp.transportation.solve_transportation` on the
    same instance — the decomposition changes who does the work, not
    the optimum.

    Parameters
    ----------
    problem : TransportationProblem
        Global instance with equality supplies and capacity demands.
    zone_rows, zone_cols : sequence of sequences of int
        Row/column ownership per zone (partitions of ``0..m-1`` /
        ``0..n-1``; see :func:`extract_zone_subproblems`).
    price_rule : str
        ``"block"`` or ``"dantzig"`` — see
        :class:`DistributedCoordinator`.
    gap_tol : float, optional
        Early-termination bound on the certified relative duality gap;
        ``None`` iterates to exact optimality.
    max_rounds : int
        Safety bound on price-exchange epochs.
    max_bids : int
        Bids per zone per epoch under the ``block`` rule.
    workers : sequence of ZoneWorker, optional
        Pre-built zone workers (e.g. with injected presolves); built
        from the problem slices when omitted.

    Returns
    -------
    DistributedSolveResult
        Converged status/flow/objective plus protocol statistics
        (rounds, pivots, certified gap, per-zone seconds). Also
        reports into the ``dsolve.*`` metrics.

    Examples
    --------
    >>> import numpy as np
    >>> from repro.lp import TransportationProblem
    >>> from repro.lp.distributed import solve_distributed
    >>> problem = TransportationProblem(
    ...     supply=np.array([4.0, 2.0]),
    ...     demand=np.array([5.0, 5.0]),
    ...     cost=np.array([[1.0, 3.0], [2.0, 1.0]]),
    ... )
    >>> result = solve_distributed(problem, [[0], [1]], [[0], [1]])
    >>> result.status.name, round(result.objective, 6)
    ('OPTIMAL', 6.0)
    """
    with trace_span(
        "dsolve.solve",
        rows=problem.num_sources,
        cols=problem.num_destinations,
        zones=len(zone_rows),
    ):
        if workers is None:
            workers = extract_zone_subproblems(problem, zone_rows, zone_cols)
        return run_protocol(
            workers,
            price_rule=price_rule,
            gap_tol=gap_tol,
            max_rounds=max_rounds,
            max_bids=max_bids,
        )


def run_protocol(
    workers: Sequence[ZoneWorker],
    price_rule: str = "block",
    gap_tol: Optional[float] = None,
    max_rounds: int = 10_000,
    max_bids: int = 16,
) -> DistributedSolveResult:
    """Run the full protocol over pre-built zone workers, in-process.

    The loop :func:`solve_distributed` delegates to, exposed for
    callers that build their own :class:`ZoneWorker` objects (the core
    layer injects ``PlacementSession``-presolved workers). Publishes the
    ``dsolve.*`` metrics.

    Parameters
    ----------
    workers : sequence of ZoneWorker
        One worker per zone; together they must own partitions of the
        global rows and columns.
    price_rule, gap_tol, max_rounds, max_bids
        As on :func:`solve_distributed`.

    Returns
    -------
    DistributedSolveResult
        Converged status/flow/objective plus protocol statistics.
    """
    coordinator = DistributedCoordinator(
        price_rule=price_rule,
        gap_tol=gap_tol,
        max_rounds=max_rounds,
        max_bids=max_bids,
    )
    messages = 0
    profiles = [w.profile() for w in workers]
    warm_hits = sum(1 for p in profiles if p.presolve_warm_started)
    local_objective = float(
        sum(p.local_objective for p in profiles
            if p.local_feasible and np.isfinite(p.local_objective))
    )
    for p in profiles:
        coordinator.register(p)
        messages += 1
    coordinator.initialize()
    by_id = {w.zone_id: w for w in workers}
    while not coordinator.converged:
        updates = coordinator.price_updates()
        messages += len(updates)
        for zone_id, update in updates.items():
            coordinator.submit(by_id[zone_id].price(update))
            messages += 1
        if not coordinator.step():
            break
    for zone_id, assignment in coordinator.assignments().items():
        by_id[zone_id].accept(assignment)
        messages += 1
    status, flow, objective = coordinator.result()
    zone_seconds = {w.zone_id: w.seconds for w in workers}
    slowest = max(zone_seconds.values()) if zone_seconds else 0.0
    registry = get_registry()
    registry.counter("dsolve.solves").inc()
    registry.counter("dsolve.rounds").inc(coordinator.rounds)
    registry.counter("dsolve.pivots").inc(coordinator.pivots)
    registry.counter("dsolve.bids").inc(coordinator.bids_received)
    if np.isfinite(coordinator.gap):
        registry.gauge("dsolve.last_gap").set(coordinator.gap)
    registry.histogram("dsolve.solve_seconds").observe(
        coordinator.seconds + sum(zone_seconds.values())
    )
    return DistributedSolveResult(
        status=status,
        flow=flow,
        objective=objective,
        gap=coordinator.gap,
        rounds=coordinator.rounds,
        pivots=coordinator.pivots,
        bids_received=coordinator.bids_received,
        zone_count=len(workers),
        messages=messages,
        local_objective=local_objective,
        presolve_warm_hits=warm_hits,
        coordinator_seconds=coordinator.seconds,
        zone_seconds=zone_seconds,
        critical_path_seconds=coordinator.seconds + slowest,
    )
