"""Independent solution verification: feasibility and optimality
certificates.

Solvers can be wrong (ours are hand-rolled); verification is cheap.
This module checks a claimed :class:`~repro.lp.result.Solution` against
its :class:`~repro.lp.model.LinearProgram` without re-solving:

* :func:`check_feasibility` — bounds and every constraint within
  tolerance;
* :func:`duality_gap_bound` — when duals are available, the weak-duality
  certificate: the dual objective lower-bounds the primal, so
  ``primal − dual ≤ gap`` proves the claimed solution is within ``gap``
  of optimal (0 ⇒ optimal);
* :func:`verify_solution` — both, rolled into a verdict object.

The placement engine's cross-backend equivalence tests use this to
certify, not just compare, optima.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Mapping, Optional

import numpy as np

from repro.lp.model import LinearProgram
from repro.lp.result import Solution


@dataclass(frozen=True)
class Verification:
    """Outcome of verifying one solution."""

    feasible: bool
    violations: tuple
    duality_gap: Optional[float]  # None when no duals were available

    @property
    def certified_optimal(self) -> bool:
        """Feasible with a (near-)zero duality gap certificate."""
        return self.feasible and self.duality_gap is not None and self.duality_gap <= 1e-6

    def __bool__(self) -> bool:
        return self.feasible


def check_feasibility(
    program: LinearProgram, values: Mapping[str, float], tol: float = 1e-6
) -> List[str]:
    """Human-readable list of bound/constraint violations (empty = ok)."""
    violations: List[str] = []
    for var in program.variables:
        value = values.get(var.name, 0.0)
        if value < var.lower - tol:
            violations.append(f"{var.name} = {value:.6g} below lower bound {var.lower}")
        if value > var.upper + tol:
            violations.append(f"{var.name} = {value:.6g} above upper bound {var.upper}")
        if var.is_integer and abs(value - round(value)) > tol:
            violations.append(f"{var.name} = {value:.6g} is not integral")
    for con in program.constraints:
        violation = con.violation(values)
        if violation > tol:
            violations.append(
                f"constraint {con.name or '?'} violated by {violation:.6g}"
            )
    return violations


def dual_objective(program: LinearProgram, duals: Mapping[str, float]) -> float:
    """Dual objective value ``Σ y_k · rhs_k`` for the given multipliers.

    Valid as a primal lower bound when the duals come from an optimal
    dual solution of the same program (what HiGHS returns). Variable
    bound duals are not exposed by our backends, so programs whose
    optimum leans on finite variable bounds get a looser bound; callers
    see that as a positive gap, never a false certificate — unless every
    bounded variable sits at zero in the optimal basis.
    """
    total = float(program.objective.constant)
    for con in program.constraints:
        y = duals.get(con.name)
        if y is not None:
            total += y * con.rhs
    return total


def duality_gap_bound(
    program: LinearProgram, solution: Solution
) -> Optional[float]:
    """Primal − dual gap when duals are present (``None`` otherwise).

    A (near-)zero gap certifies optimality by weak duality; a positive
    value only bounds the distance from optimal (see
    :func:`dual_objective` for when the bound is loose).
    """
    if not solution.duals:
        return None
    primal = program.evaluate_objective(dict(solution.values))
    dual = dual_objective(program, solution.duals)
    return float(primal - dual)


def verify_solution(
    program: LinearProgram, solution: Solution, tol: float = 1e-6
) -> Verification:
    """Full verification of a claimed optimal solution."""
    if not solution.status.is_optimal:
        return Verification(feasible=False, violations=("status is not optimal",),
                            duality_gap=None)
    violations = check_feasibility(program, dict(solution.values), tol)
    gap = duality_gap_bound(program, solution)
    return Verification(
        feasible=not violations,
        violations=tuple(violations),
        duality_gap=gap,
    )
