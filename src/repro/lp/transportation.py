"""Exact transportation-problem solver (north-west corner + MODI).

The DUST placement program (paper Eq. 3) is a *transportation problem*:

    minimize   sum_ij  c_ij x_ij          (c_ij = Trmin_ij)
    subject to sum_j   x_ij  = s_i        (ship all of Busy node i's Cs_i)
               sum_i   x_ij <= d_j        (candidate j's spare capacity Cd_j)
               x_ij >= 0

This module solves it directly: the demand inequality is balanced with a
dummy supply row that absorbs leftover destination capacity at zero
cost, the initial basic feasible solution comes from the north-west
corner rule, and optimality is reached with MODI (u/v multiplier)
iterations, i.e. the network-simplex specialization for bipartite
transportation graphs. Pairs with no admissible route (hop-bounded path
absent) are modeled with a Big-M cost and rejected post-hoc if they
carry flow.

Complexity per MODI iteration is Θ(m·n) for pricing plus O(m+n) for the
cycle pivot, far below the general dense simplex — this is one of the
repo's ablation axes (``benchmarks/bench_ablation_lp.py``).
"""

from __future__ import annotations

import time
from collections import defaultdict, deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.lp.result import Solution, SolveStatus

_EPS = 1e-9


@dataclass(frozen=True)
class TransportationProblem:
    """A (possibly unbalanced) transportation instance.

    Attributes
    ----------
    supply:
        ``s_i >= 0`` — amount each source must ship (equality).
    demand:
        ``d_j >= 0`` — capacity of each destination (inequality).
    cost:
        ``(m, n)`` unit shipping costs; ``np.inf`` marks forbidden lanes.
    """

    supply: np.ndarray
    demand: np.ndarray
    cost: np.ndarray

    def __post_init__(self) -> None:
        supply = np.asarray(self.supply, dtype=float)
        demand = np.asarray(self.demand, dtype=float)
        cost = np.asarray(self.cost, dtype=float)
        object.__setattr__(self, "supply", supply)
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "cost", cost)
        if cost.shape != (supply.size, demand.size):
            raise SolverError(
                f"cost shape {cost.shape} does not match "
                f"{supply.size} supplies x {demand.size} demands"
            )
        if (supply < -_EPS).any() or (demand < -_EPS).any():
            raise SolverError("supplies and demands must be non-negative")

    @property
    def num_sources(self) -> int:
        return self.supply.size

    @property
    def num_destinations(self) -> int:
        return self.demand.size


@dataclass(frozen=True)
class TransportationResult:
    """Optimal flow for a :class:`TransportationProblem`."""

    status: SolveStatus
    flow: np.ndarray  # (m, n); zeros when not optimal
    objective: float
    iterations: int
    solve_time: float

    def to_solution(self, name_of: Optional[Sequence[Sequence[str]]] = None) -> Solution:
        """Convert to the generic :class:`~repro.lp.result.Solution`.

        ``name_of[i][j]`` supplies the variable name for lane (i, j);
        defaults to ``x_{i}_{j}``.
        """
        values: Dict[str, float] = {}
        if self.status.is_optimal:
            m, n = self.flow.shape
            for i in range(m):
                for j in range(n):
                    name = name_of[i][j] if name_of is not None else f"x_{i}_{j}"
                    values[name] = float(self.flow[i, j])
        return Solution(
            status=self.status,
            objective=self.objective if self.status.is_optimal else float("nan"),
            values=values,
            backend="transportation",
            iterations=self.iterations,
            solve_time=self.solve_time,
        )


def _northwest_corner(
    supply: np.ndarray, demand: np.ndarray
) -> Tuple[Dict[Tuple[int, int], float], List[Tuple[int, int]]]:
    """North-west corner initial BFS on a *balanced* instance.

    Returns the flow on basic cells and the ordered basis list, padded
    with degenerate (zero-flow) cells so the basis always spans
    ``m + n - 1`` cells (a spanning tree of the bipartite graph).
    """
    m, n = supply.size, demand.size
    s = supply.copy()
    d = demand.copy()
    flow: Dict[Tuple[int, int], float] = {}
    basis: List[Tuple[int, int]] = []
    i = j = 0
    while i < m and j < n:
        moved = min(s[i], d[j])
        flow[(i, j)] = moved
        basis.append((i, j))
        s[i] -= moved
        d[j] -= moved
        if i == m - 1 and j == n - 1:
            break
        if s[i] <= _EPS and i < m - 1:
            i += 1
        else:
            j += 1
    # Degenerate padding: NW corner can terminate early when a supply and
    # demand exhaust simultaneously; walk the last row to keep a tree.
    need = m + n - 1 - len(basis)
    if need > 0:
        present = set(basis)
        for jj in range(n):
            if need == 0:
                break
            cell = (m - 1, jj)
            if cell not in present:
                flow[cell] = 0.0
                basis.append(cell)
                present.add(cell)
                need -= 1
        for ii in range(m):
            if need == 0:
                break
            cell = (ii, n - 1)
            if cell not in present:
                flow[cell] = 0.0
                basis.append(cell)
                present.add(cell)
                need -= 1
    return flow, basis


def _compute_potentials(
    basis: Sequence[Tuple[int, int]], cost: np.ndarray
) -> Tuple[np.ndarray, np.ndarray]:
    """Solve ``u_i + v_j = c_ij`` over the basis tree (BFS from u_0 = 0)."""
    m, n = cost.shape
    u = np.full(m, np.nan)
    v = np.full(n, np.nan)
    rows_adj: Dict[int, List[int]] = defaultdict(list)
    cols_adj: Dict[int, List[int]] = defaultdict(list)
    for (i, j) in basis:
        rows_adj[i].append(j)
        cols_adj[j].append(i)
    u[0] = 0.0
    queue: deque = deque([("r", 0)])
    while queue:
        kind, idx = queue.popleft()
        if kind == "r":
            for j in rows_adj[idx]:
                if np.isnan(v[j]):
                    v[j] = cost[idx, j] - u[idx]
                    queue.append(("c", j))
        else:
            for i in cols_adj[idx]:
                if np.isnan(u[i]):
                    u[i] = cost[i, idx] - v[idx]
                    queue.append(("r", i))
    # A disconnected basis would leave NaNs; that indicates a broken tree.
    if np.isnan(u).any() or np.isnan(v).any():
        raise SolverError("transportation basis is not a spanning tree")
    return u, v


def _find_cycle(
    basis: Sequence[Tuple[int, int]], entering: Tuple[int, int]
) -> List[Tuple[int, int]]:
    """Unique alternating cycle created by adding ``entering`` to the tree.

    Returns cells in cycle order starting with ``entering``; flow is
    increased on even positions and decreased on odd positions.
    """
    start_row, target_col = entering
    rows_adj: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    cols_adj: Dict[int, List[Tuple[int, int]]] = defaultdict(list)
    for (i, j) in basis:
        rows_adj[i].append((i, j))
        cols_adj[j].append((i, j))

    # BFS over the bipartite tree from row node `start_row` to column node
    # `target_col`; edges are basic cells.
    parent: Dict[Tuple[str, int], Tuple[Tuple[str, int], Tuple[int, int]]] = {}
    queue: deque = deque([("r", start_row)])
    seen = {("r", start_row)}
    found = False
    while queue and not found:
        kind, idx = queue.popleft()
        edges = rows_adj[idx] if kind == "r" else cols_adj[idx]
        for cell in edges:
            nxt = ("c", cell[1]) if kind == "r" else ("r", cell[0])
            if nxt in seen:
                continue
            seen.add(nxt)
            parent[nxt] = ((kind, idx), cell)
            if nxt == ("c", target_col):
                found = True
                break
            queue.append(nxt)
    if not found:
        raise SolverError("entering cell does not close a cycle (broken basis tree)")

    # Reconstruct path of basic cells from target column back to start row.
    path_cells: List[Tuple[int, int]] = []
    node = ("c", target_col)
    while node != ("r", start_row):
        prev, cell = parent[node]
        path_cells.append(cell)
        node = prev
    path_cells.reverse()
    return [entering] + path_cells


def solve_transportation(
    problem: TransportationProblem,
    max_iter: int = 100_000,
    big_m: Optional[float] = None,
) -> TransportationResult:
    """Solve to optimality with north-west corner + MODI pivots.

    Parameters
    ----------
    problem:
        Instance with equality supplies and ``<=`` demand capacities.
    max_iter:
        Safety bound on MODI pivots.
    big_m:
        Cost used for forbidden (infinite-cost) lanes; auto-scaled from
        the finite costs when omitted.
    """
    start = time.perf_counter()
    supply = problem.supply
    demand = problem.demand
    m, n = problem.num_sources, problem.num_destinations

    total_supply = float(supply.sum())
    total_demand = float(demand.sum())
    if m == 0 or total_supply <= _EPS:
        # Nothing to ship: trivially optimal zero flow.
        return TransportationResult(
            status=SolveStatus.OPTIMAL,
            flow=np.zeros((m, n)),
            objective=0.0,
            iterations=0,
            solve_time=time.perf_counter() - start,
        )
    if n == 0 or total_supply > total_demand + _EPS:
        return TransportationResult(
            status=SolveStatus.INFEASIBLE,
            flow=np.zeros((m, n)),
            objective=float("nan"),
            iterations=0,
            solve_time=time.perf_counter() - start,
        )

    cost = problem.cost.copy()
    forbidden = ~np.isfinite(cost)
    if big_m is None:
        finite = cost[~forbidden]
        base = float(finite.max()) if finite.size else 1.0
        big_m = (abs(base) + 1.0) * max(m, n) * 1e6
    cost[forbidden] = big_m

    # Balance with a dummy supply row absorbing spare destination capacity.
    slack = total_demand - total_supply
    if slack > _EPS:
        supply_b = np.concatenate([supply, [slack]])
        cost_b = np.vstack([cost, np.zeros((1, n))])
        forbidden_b = np.vstack([forbidden, np.zeros((1, n), dtype=bool)])
    else:
        supply_b = supply
        cost_b = cost
        forbidden_b = forbidden
    mb = supply_b.size

    flow, basis = _northwest_corner(supply_b, demand)
    basis_set = set(basis)

    iterations = 0
    for iterations in range(1, max_iter + 1):
        u, v = _compute_potentials(basis, cost_b)
        reduced = cost_b - u[:, None] - v[None, :]
        # Mask basic cells: their reduced cost is 0 by construction but
        # numerical noise could otherwise re-select them.
        for (i, j) in basis:
            reduced[i, j] = 0.0
        entering_flat = int(np.argmin(reduced))
        ei, ej = divmod(entering_flat, n)
        if reduced[ei, ej] >= -1e-7 * (1.0 + abs(cost_b[ei, ej])):
            break  # optimal

        cycle = _find_cycle(basis, (ei, ej))
        minus_cells = cycle[1::2]
        theta = min(flow[c] for c in minus_cells)
        leaving = min(
            (c for c in minus_cells if abs(flow[c] - theta) <= _EPS),
            key=lambda c: (c[0], c[1]),
        )
        for pos, cell in enumerate(cycle):
            if pos % 2 == 0:
                flow[cell] = flow.get(cell, 0.0) + theta
            else:
                flow[cell] -= theta
        del flow[leaving]
        basis_set.discard(leaving)
        basis_set.add((ei, ej))
        basis = list(basis_set)
        if (ei, ej) != leaving:
            flow.setdefault((ei, ej), 0.0)
    else:
        return TransportationResult(
            status=SolveStatus.ITERATION_LIMIT,
            flow=np.zeros((m, n)),
            objective=float("nan"),
            iterations=iterations,
            solve_time=time.perf_counter() - start,
        )

    flow_matrix = np.zeros((mb, n))
    for (i, j), amount in flow.items():
        flow_matrix[i, j] = max(0.0, amount)

    # Any flow on a forbidden lane means the real problem is infeasible.
    if (flow_matrix[forbidden_b] > 1e-6).any():
        return TransportationResult(
            status=SolveStatus.INFEASIBLE,
            flow=np.zeros((m, n)),
            objective=float("nan"),
            iterations=iterations,
            solve_time=time.perf_counter() - start,
        )

    real_flow = flow_matrix[:m]
    objective = float((problem.cost[~forbidden] * real_flow[~forbidden]).sum())
    return TransportationResult(
        status=SolveStatus.OPTIMAL,
        flow=real_flow,
        objective=objective,
        iterations=iterations,
        solve_time=time.perf_counter() - start,
    )
