"""Exact transportation-problem solver (Vogel + array-tree MODI, warm-startable).

The DUST placement program (paper Eq. 3) is a *transportation problem*:

    minimize   sum_ij  c_ij x_ij          (c_ij = Trmin_ij)
    subject to sum_j   x_ij  = s_i        (ship all of Busy node i's Cs_i)
               sum_i   x_ij <= d_j        (candidate j's spare capacity Cd_j)
               x_ij >= 0

This module solves it directly: the demand inequality is balanced with a
dummy supply row that absorbs leftover destination capacity at zero
cost, the initial basic feasible solution comes from Vogel's
approximation (far fewer pivots than the north-west corner it
replaced), and optimality is reached with MODI (u/v multiplier)
iterations — the network-simplex specialization for bipartite
transportation graphs. Pairs with no admissible route (hop-bounded path
absent) are modeled with a Big-M cost and rejected post-hoc if they
carry flow.

The basis is a spanning tree of the bipartite supply/demand graph and
is represented with flat index arrays (``parent``/``depth``/per-node
basic cell) rather than per-iteration ``defaultdict`` BFS: reduced-cost
pricing is one vectorized matrix expression over the whole cost matrix,
and the pivot cycle is traced in O(tree depth) by walking parent
pointers from the entering cell's endpoints to their lowest common
ancestor.

Warm starts: every optimal solve returns its final basis as a
:class:`TransportationBasis`; passing it back via
``solve_transportation(..., warm_start=basis)`` re-prices from that
tree instead of building a cold one. A stale basis (perturbed supplies,
demands or costs — e.g. the manager's periodic re-solve after
utilization drift) is *repaired*: cells that no longer fit the instance
are dropped, the forest is completed to a spanning tree with
cheapest-cost connectors, and flows are recomputed by leaf elimination.
If the repaired tree is primal-infeasible (a recomputed flow would be
negative) the solver silently falls back to the Vogel cold start, so a
warm-started call can never return a different optimum than a cold one.

Complexity per MODI iteration is Θ(m·n) for pricing plus O(m+n) for the
tree walk and O(depth) for the cycle pivot, far below the general dense
simplex — this is one of the repo's ablation axes
(``benchmarks/bench_ablation_lp.py``; warm-vs-cold numbers live in
``benchmarks/bench_lp_warmstart.py`` → ``BENCH_lp.json``).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.lp.result import Solution, SolveStatus
from repro.obs import get_registry, trace_span

_EPS = 1e-9
#: Relative optimality tolerance on reduced costs.
_OPT_TOL = 1e-7
#: A repaired warm-start flow below this is primal-infeasible.
_FEAS_TOL = 1e-7


@dataclass(frozen=True)
class TransportationProblem:
    """A (possibly unbalanced) transportation instance.

    Attributes
    ----------
    supply:
        ``s_i >= 0`` — amount each source must ship (equality).
    demand:
        ``d_j >= 0`` — capacity of each destination (inequality).
    cost:
        ``(m, n)`` unit shipping costs; ``np.inf`` marks forbidden lanes.
    """

    supply: np.ndarray
    demand: np.ndarray
    cost: np.ndarray

    def __post_init__(self) -> None:
        supply = np.asarray(self.supply, dtype=float)
        demand = np.asarray(self.demand, dtype=float)
        cost = np.asarray(self.cost, dtype=float)
        object.__setattr__(self, "supply", supply)
        object.__setattr__(self, "demand", demand)
        object.__setattr__(self, "cost", cost)
        if cost.shape != (supply.size, demand.size):
            raise SolverError(
                f"cost shape {cost.shape} does not match "
                f"{supply.size} supplies x {demand.size} demands"
            )
        if (supply < -_EPS).any() or (demand < -_EPS).any():
            raise SolverError("supplies and demands must be non-negative")

    @property
    def num_sources(self) -> int:
        return self.supply.size

    @property
    def num_destinations(self) -> int:
        return self.demand.size


@dataclass(frozen=True)
class TransportationBasis:
    """An optimal (or at least basic) spanning tree, reusable as a warm start.

    ``cells`` live in *balanced* coordinates: row ``m`` (when ``dummy``)
    is the slack supply row absorbing spare destination capacity. A
    basis is only meaningful for instances of the same ``(m, n)`` shape;
    :func:`solve_transportation` ignores mismatched warm starts.
    """

    shape: Tuple[int, int]  # (m, n) of the real problem
    dummy: bool  # balanced instance carried a dummy supply row
    cells: Tuple[Tuple[int, int], ...]


@dataclass(frozen=True)
class TransportationResult:
    """Optimal flow for a :class:`TransportationProblem`."""

    status: SolveStatus
    flow: np.ndarray  # (m, n); zeros when not optimal
    objective: float
    iterations: int  # MODI pivots performed
    solve_time: float
    #: Final basis tree when optimal — feed back as ``warm_start=``.
    basis: Optional[TransportationBasis] = None
    #: True when the solve actually started from a repaired warm basis.
    warm_started: bool = False

    def to_solution(self, name_of: Optional[Sequence[Sequence[str]]] = None) -> Solution:
        """Convert to the generic :class:`~repro.lp.result.Solution`.

        ``name_of[i][j]`` supplies the variable name for lane (i, j);
        defaults to ``x_{i}_{j}``. The final basis rides along in
        ``Solution.basis`` so callers holding the generic container can
        still warm-start the next solve.
        """
        values: Dict[str, float] = {}
        if self.status.is_optimal:
            m, n = self.flow.shape
            for i in range(m):
                for j in range(n):
                    name = name_of[i][j] if name_of is not None else f"x_{i}_{j}"
                    values[name] = float(self.flow[i, j])
        return Solution(
            status=self.status,
            objective=self.objective if self.status.is_optimal else float("nan"),
            values=values,
            backend="transportation",
            iterations=self.iterations,
            solve_time=self.solve_time,
            basis=self.basis,
            total_pivots=self.iterations,
            warm_started=self.warm_started,
        )


# -- cold start: Vogel's approximation ---------------------------------------------


def _vogel_basis(
    supply: np.ndarray, demand: np.ndarray, cost: np.ndarray
) -> Tuple[np.ndarray, List[Tuple[int, int]]]:
    """Vogel initial BFS on a *balanced* instance.

    Classic crossing-out scheme: each step commits the cheapest cell of
    the line (row or column) with the largest regret (gap between its
    two cheapest costs) and crosses out exactly one exhausted line, so
    the chosen cells always number ``m + n - 1`` and form a spanning
    tree — degenerate zero-flow cells included.
    """
    m, n = cost.shape
    s = supply.astype(float).copy()
    d = demand.astype(float).copy()
    work = cost.astype(float).copy()  # inf marks crossed-out lines
    row_active = np.ones(m, dtype=bool)
    col_active = np.ones(n, dtype=bool)
    flow = np.zeros((m, n))
    cells: List[Tuple[int, int]] = []

    def _penalties(matrix: np.ndarray, axis: int) -> np.ndarray:
        """Gap between the two smallest entries along ``axis`` (inf when
        fewer than two finite entries remain — such lines are forced)."""
        k = matrix.shape[axis]
        if k == 1:
            return matrix.min(axis=axis)
        two = np.partition(matrix, 1, axis=axis).take([0, 1], axis=axis)
        with np.errstate(invalid="ignore"):  # inf - inf on crossed-out lines
            return two.take(1, axis=axis) - two.take(0, axis=axis)

    for _ in range(m + n - 1):
        rows_left = int(row_active.sum())
        cols_left = int(col_active.sum())
        if rows_left == 0 or cols_left == 0:  # pragma: no cover - balance guard
            raise SolverError("Vogel crossed out all lines before spanning")
        row_pen = _penalties(work, axis=1)
        col_pen = _penalties(work, axis=0)
        row_pen = np.where(row_active, row_pen, -np.inf)
        col_pen = np.where(col_active, col_pen, -np.inf)
        # inf - inf from a fully crossed-out line would poison argmax.
        row_pen = np.nan_to_num(row_pen, nan=-np.inf)
        col_pen = np.nan_to_num(col_pen, nan=-np.inf)
        br, bc = int(np.argmax(row_pen)), int(np.argmax(col_pen))
        if row_pen[br] >= col_pen[bc]:
            i = br
            j = int(np.argmin(work[i]))
        else:
            j = bc
            i = int(np.argmin(work[:, j]))
        moved = min(s[i], d[j])
        flow[i, j] = moved
        cells.append((i, j))
        s[i] -= moved
        d[j] -= moved
        # Cross out exactly one line; `min` returns one operand bit-exact
        # so at least one side reaches 0.0 exactly.
        if s[i] <= _EPS and d[j] <= _EPS:
            if rows_left > 1:
                row_active[i] = False
                work[i, :] = np.inf
            else:
                col_active[j] = False
                work[:, j] = np.inf
        elif s[i] <= _EPS:
            if rows_left > 1:
                row_active[i] = False
                work[i, :] = np.inf
            else:  # last row must survive until every column is closed
                col_active[j] = False
                work[:, j] = np.inf
        else:
            if cols_left > 1:
                col_active[j] = False
                work[:, j] = np.inf
            else:
                row_active[i] = False
                work[i, :] = np.inf
    return flow, cells


# -- warm start: basis repair ------------------------------------------------------


class _UnionFind:
    __slots__ = ("parent",)

    def __init__(self, size: int) -> None:
        self.parent = list(range(size))

    def find(self, x: int) -> int:
        root = x
        while self.parent[root] != root:
            root = self.parent[root]
        while self.parent[x] != root:  # path compression
            self.parent[x], x = root, self.parent[x]
        return root

    def union(self, a: int, b: int) -> bool:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        self.parent[rb] = ra
        return True


def _repair_warm_cells(
    warm: TransportationBasis, mb: int, n: int, cost_b: np.ndarray
) -> List[Tuple[int, int]]:
    """Rebuild a spanning tree from a possibly-stale basis.

    Cells outside the current balanced shape (e.g. a dummy row that no
    longer exists) are dropped, cycle-creating duplicates are skipped,
    and the surviving forest is completed with the cheapest cells that
    connect two components — so a lightly perturbed basis survives
    nearly intact while arbitrary garbage still yields a valid tree.
    """
    uf = _UnionFind(mb + n)
    kept: List[Tuple[int, int]] = []
    for i, j in warm.cells:
        if 0 <= i < mb and 0 <= j < n and uf.union(i, mb + j):
            kept.append((i, j))
    while len(kept) < mb + n - 1:
        comp_row = np.fromiter((uf.find(i) for i in range(mb)), dtype=np.int64, count=mb)
        comp_col = np.fromiter(
            (uf.find(mb + j) for j in range(n)), dtype=np.int64, count=n
        )
        connects = comp_row[:, None] != comp_col[None, :]
        masked = np.where(connects, cost_b, np.inf)
        flat = int(np.argmin(masked))
        i, j = divmod(flat, n)
        if not np.isfinite(masked[i, j]):  # pragma: no cover - complete bipartite
            raise SolverError("cannot complete warm basis to a spanning tree")
        uf.union(i, mb + j)
        kept.append((i, j))
    return kept


def _tree_flows(
    cells: Sequence[Tuple[int, int]], mb: int, n: int, supply: np.ndarray, demand: np.ndarray
) -> Optional[np.ndarray]:
    """Unique flow the spanning tree must carry, by leaf elimination.

    Returns the (mb, n) flow matrix, or ``None`` when the tree demands a
    negative flow — i.e. the warm basis is primal-infeasible for the
    perturbed supplies/demands and the caller should cold-start.
    """
    N = mb + n
    adjacency: List[List[int]] = [[] for _ in range(N)]
    for idx, (i, j) in enumerate(cells):
        adjacency[i].append(idx)
        adjacency[mb + j].append(idx)
    degree = np.fromiter((len(a) for a in adjacency), dtype=np.int64, count=N)
    remaining = np.concatenate([supply, demand]).astype(float)
    done = np.zeros(len(cells), dtype=bool)
    flow = np.zeros((mb, n))
    leaves = deque(int(x) for x in np.flatnonzero(degree == 1))
    while leaves:
        node = leaves.popleft()
        if degree[node] != 1:
            continue
        edge = next((e for e in adjacency[node] if not done[e]), None)
        if edge is None:
            continue
        i, j = cells[edge]
        other = mb + j if node == i else i
        amount = remaining[node]
        if amount < -_FEAS_TOL:
            return None
        flow[i, j] = max(0.0, amount)
        remaining[node] = 0.0
        remaining[other] -= amount
        done[edge] = True
        degree[node] -= 1
        degree[other] -= 1
        if degree[other] == 1:
            leaves.append(int(other))
    if not done.all():  # pragma: no cover - guarded by _BasisTree validation
        raise SolverError("warm basis cells do not form a spanning tree")
    if (remaining < -_FEAS_TOL).any() or (remaining > _FEAS_TOL).any():
        return None
    return flow


# -- the basis tree ---------------------------------------------------------------


class _BasisTree:
    """Spanning-tree basis over the bipartite supply/demand graph.

    Nodes are flat indices: row ``i`` is node ``i``, column ``j`` is
    node ``mb + j``. The tree is kept as parallel index arrays
    (``parent``, ``depth``, ``parent_cell``) refreshed with one O(m+n)
    pass per pivot; the pivot cycle itself is traced in O(depth) by
    climbing parent pointers.
    """

    __slots__ = ("mb", "n", "bi", "bj", "slot", "parent", "depth", "pcell", "order")

    def __init__(self, cells: Sequence[Tuple[int, int]], mb: int, n: int) -> None:
        if len(cells) != mb + n - 1:
            raise SolverError(
                f"basis has {len(cells)} cells, expected {mb + n - 1}"
            )
        self.mb = mb
        self.n = n
        self.bi = np.fromiter((c[0] for c in cells), dtype=np.int64, count=len(cells))
        self.bj = np.fromiter((c[1] for c in cells), dtype=np.int64, count=len(cells))
        self.slot = {cell: k for k, cell in enumerate(cells)}
        if len(self.slot) != len(cells):
            raise SolverError("duplicate cells in transportation basis")
        N = mb + n
        self.parent = np.empty(N, dtype=np.int64)
        self.depth = np.empty(N, dtype=np.int64)
        self.pcell = np.empty(N, dtype=np.int64)  # basis slot linking to parent
        self.order = np.empty(N, dtype=np.int64)  # BFS visit order (parents first)

    def refresh(self) -> None:
        """Rebuild parent/depth arrays from the current cell set (one
        O(m+n) BFS from row node 0)."""
        mb, n = self.mb, self.n
        N = mb + n
        adjacency: List[List[Tuple[int, int]]] = [[] for _ in range(N)]
        for k in range(len(self.bi)):
            i, j = int(self.bi[k]), mb + int(self.bj[k])
            adjacency[i].append((j, k))
            adjacency[j].append((i, k))
        parent, depth, pcell, order = self.parent, self.depth, self.pcell, self.order
        parent.fill(-2)  # -2 = unvisited, -1 = root
        parent[0] = -1
        depth[0] = 0
        pcell[0] = -1
        order[0] = 0
        head, tail = 0, 1
        while head < tail:
            node = int(order[head])
            head += 1
            for nxt, k in adjacency[node]:
                if parent[nxt] == -2:
                    parent[nxt] = node
                    depth[nxt] = depth[node] + 1
                    pcell[nxt] = k
                    order[tail] = nxt
                    tail += 1
        if tail != N:
            raise SolverError("transportation basis is not a spanning tree")

    def potentials(self, cost_b: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Solve ``u_i + v_j = c_ij`` over the tree in visit order."""
        mb = self.mb
        u = np.empty(mb)
        v = np.empty(self.n)
        u[0] = 0.0
        bi, bj, pcell = self.bi, self.bj, self.pcell
        for node in self.order[1:]:
            k = pcell[node]
            i, j = int(bi[k]), int(bj[k])
            if node < mb:  # row node hangs off its column parent
                u[i] = cost_b[i, j] - v[j]
            else:
                v[j] = cost_b[i, j] - u[i]
        return u, v

    def cycle(self, ei: int, ej: int) -> List[Tuple[int, int]]:
        """Cells of the unique cycle closed by entering cell ``(ei, ej)``,
        in adjacency order starting at the entering cell (even positions
        gain flow, odd positions lose it). O(tree depth)."""
        mb = self.mb
        parent, depth, pcell = self.parent, self.depth, self.pcell
        a, b = ei, mb + ej
        side_a: List[int] = []  # basis slots from row endpoint up
        side_b: List[int] = []  # basis slots from column endpoint up
        while depth[a] > depth[b]:
            side_a.append(int(pcell[a]))
            a = int(parent[a])
        while depth[b] > depth[a]:
            side_b.append(int(pcell[b]))
            b = int(parent[b])
        while a != b:
            side_a.append(int(pcell[a]))
            a = int(parent[a])
            side_b.append(int(pcell[b]))
            b = int(parent[b])
        bi, bj = self.bi, self.bj
        path = [(int(bi[k]), int(bj[k])) for k in side_b]
        path.extend((int(bi[k]), int(bj[k])) for k in reversed(side_a))
        return [(ei, ej)] + path

    def replace(self, leaving: Tuple[int, int], entering: Tuple[int, int]) -> None:
        k = self.slot.pop(leaving)
        self.slot[entering] = k
        self.bi[k], self.bj[k] = entering
        self.refresh()

    def cells(self) -> Tuple[Tuple[int, int], ...]:
        return tuple(sorted(zip(self.bi.tolist(), self.bj.tolist())))


# -- solver ------------------------------------------------------------------------


def solve_transportation(
    problem: TransportationProblem,
    max_iter: int = 100_000,
    big_m: Optional[float] = None,
    warm_start: Optional[TransportationBasis] = None,
) -> TransportationResult:
    """Solve to optimality with Vogel (or a warm basis) + MODI pivots.

    Parameters
    ----------
    problem : TransportationProblem
        Instance with equality supplies and ``<=`` demand capacities.
    max_iter : int, optional
        Safety bound on MODI pivots.
    big_m : float, optional
        Cost used for forbidden (infinite-cost) lanes; auto-scaled from
        the finite costs when omitted.
    warm_start : TransportationBasis, optional
        Basis returned by a previous solve of a same-shaped instance.
        Repaired if stale; silently ignored when the shape mismatches
        or the repair is primal-infeasible — the optimum never depends
        on the warm start, only the pivot count does.

    Returns
    -------
    TransportationResult
        Optimal flow, objective, pivot count and solve time. Each solve
        also reports into the ``lp.transportation.*`` metrics and (when
        tracing is on) records an ``lp.transportation.solve`` span.
    """
    with trace_span(
        "lp.transportation.solve",
        rows=problem.num_sources,
        cols=problem.num_destinations,
        warm=warm_start is not None,
    ):
        result = _solve_transportation_impl(problem, max_iter, big_m, warm_start)
    registry = get_registry()
    registry.counter("lp.transportation.solves").inc()
    if result.iterations:
        registry.counter("lp.transportation.pivots").inc(result.iterations)
    registry.histogram("lp.transportation.solve_seconds").observe(result.solve_time)
    return result


def _solve_transportation_impl(
    problem: TransportationProblem,
    max_iter: int = 100_000,
    big_m: Optional[float] = None,
    warm_start: Optional[TransportationBasis] = None,
) -> TransportationResult:
    start = time.perf_counter()
    supply = problem.supply
    demand = problem.demand
    m, n = problem.num_sources, problem.num_destinations

    total_supply = float(supply.sum())
    total_demand = float(demand.sum())
    if m == 0 or total_supply <= _EPS:
        # Nothing to ship: trivially optimal zero flow.
        return TransportationResult(
            status=SolveStatus.OPTIMAL,
            flow=np.zeros((m, n)),
            objective=0.0,
            iterations=0,
            solve_time=time.perf_counter() - start,
        )
    if n == 0 or total_supply > total_demand + _EPS:
        return TransportationResult(
            status=SolveStatus.INFEASIBLE,
            flow=np.zeros((m, n)),
            objective=float("nan"),
            iterations=0,
            solve_time=time.perf_counter() - start,
        )

    cost = problem.cost.copy()
    forbidden = ~np.isfinite(cost)
    if big_m is None:
        finite = cost[~forbidden]
        base = float(finite.max()) if finite.size else 1.0
        big_m = (abs(base) + 1.0) * max(m, n) * 1e6
    cost[forbidden] = big_m

    # Balance with a dummy supply row absorbing spare destination capacity.
    slack = total_demand - total_supply
    if slack > _EPS:
        supply_b = np.concatenate([supply, [slack]])
        cost_b = np.vstack([cost, np.zeros((1, n))])
        forbidden_b = np.vstack([forbidden, np.zeros((1, n), dtype=bool)])
    else:
        supply_b = supply
        cost_b = cost
        forbidden_b = forbidden
    mb = supply_b.size

    # Initial basis: repaired warm tree when one fits, Vogel otherwise.
    flow_mat: Optional[np.ndarray] = None
    cells: Optional[List[Tuple[int, int]]] = None
    warm_used = False
    if warm_start is not None and tuple(warm_start.shape) == (m, n):
        repaired = _repair_warm_cells(warm_start, mb, n, cost_b)
        flows = _tree_flows(repaired, mb, n, supply_b, demand)
        if flows is not None:
            flow_mat, cells, warm_used = flows, repaired, True
    if flow_mat is None or cells is None:
        flow_mat, cells = _vogel_basis(supply_b, demand, cost_b)

    tree = _BasisTree(cells, mb, n)
    tree.refresh()

    pivots = 0
    basic_mask_rows = tree.bi
    basic_mask_cols = tree.bj
    while True:
        u, v = tree.potentials(cost_b)
        reduced = cost_b - u[:, None] - v[None, :]
        # Basic cells price to 0 by construction; pin them so numerical
        # noise cannot re-select one as entering.
        reduced[basic_mask_rows, basic_mask_cols] = 0.0
        entering_flat = int(np.argmin(reduced))
        ei, ej = divmod(entering_flat, n)
        if reduced[ei, ej] >= -_OPT_TOL * (1.0 + abs(cost_b[ei, ej])):
            break  # optimal
        if pivots >= max_iter:
            return TransportationResult(
                status=SolveStatus.ITERATION_LIMIT,
                flow=np.zeros((m, n)),
                objective=float("nan"),
                iterations=pivots,
                solve_time=time.perf_counter() - start,
            )

        cycle = tree.cycle(ei, ej)
        minus_cells = cycle[1::2]
        theta = min(flow_mat[c] for c in minus_cells)
        leaving = min(
            (c for c in minus_cells if abs(flow_mat[c] - theta) <= _EPS),
            key=lambda c: (c[0], c[1]),
        )
        for pos, cell in enumerate(cycle):
            if pos % 2 == 0:
                flow_mat[cell] += theta
            else:
                flow_mat[cell] -= theta
        flow_mat[leaving] = 0.0
        tree.replace(leaving, (ei, ej))
        pivots += 1

    solve_time = time.perf_counter() - start
    basis = TransportationBasis(shape=(m, n), dummy=slack > _EPS, cells=tree.cells())

    # Any flow on a forbidden lane means the real problem is infeasible.
    if (flow_mat[forbidden_b] > 1e-6).any():
        return TransportationResult(
            status=SolveStatus.INFEASIBLE,
            flow=np.zeros((m, n)),
            objective=float("nan"),
            iterations=pivots,
            solve_time=solve_time,
            warm_started=warm_used,
        )

    real_flow = np.maximum(flow_mat[:m], 0.0)
    objective = float((problem.cost[~forbidden] * real_flow[~forbidden]).sum())
    return TransportationResult(
        status=SolveStatus.OPTIMAL,
        flow=real_flow,
        objective=objective,
        iterations=pivots,
        solve_time=solve_time,
        basis=basis,
        warm_started=warm_used,
    )
