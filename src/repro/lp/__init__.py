"""LP/ILP substrate: modeling layer plus interchangeable solver backends.

This package replaces the Gurobi toolkit used by the paper's simulator:

* :mod:`repro.lp.model` — algebraic model building (variables,
  expressions, constraints).
* :mod:`repro.lp.simplex` — from-scratch two-phase dense simplex.
* :mod:`repro.lp.transportation` — exact transportation-problem solver
  (the placement LP's native structure).
* :mod:`repro.lp.scipy_backend` — HiGHS via scipy.
* :mod:`repro.lp.branch_and_bound` — exact MILP on top of the simplex.
* :mod:`repro.lp.distributed` — zone-decomposed transportation solve
  with a thin price-exchange coordinator (see
  ``docs/distributed_solve.md``).

Use :func:`solve` for backend dispatch by name.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.errors import SolverError
from repro.lp.branch_and_bound import solve_branch_and_bound
from repro.lp.model import INF, Constraint, LinearProgram, LinExpr, Variable, lp_sum
from repro.lp.result import Solution, SolveStatus
from repro.lp.scipy_backend import solve_scipy
from repro.lp.simplex import SimplexBasis, solve_simplex
from repro.lp.verify import (
    Verification,
    check_feasibility,
    duality_gap_bound,
    verify_solution,
)
from repro.lp.transportation import (
    TransportationBasis,
    TransportationProblem,
    TransportationResult,
    solve_transportation,
)
from repro.lp.distributed import (
    DistributedCoordinator,
    DistributedSolveResult,
    FlowAssignment,
    LaneBids,
    PriceUpdate,
    ZoneProfile,
    ZoneWorker,
    extract_zone_subproblems,
    run_protocol,
    solve_distributed,
)

__all__ = [
    "INF",
    "Constraint",
    "DistributedCoordinator",
    "DistributedSolveResult",
    "FlowAssignment",
    "LaneBids",
    "LinExpr",
    "LinearProgram",
    "PriceUpdate",
    "SimplexBasis",
    "Solution",
    "SolveStatus",
    "TransportationBasis",
    "TransportationProblem",
    "TransportationResult",
    "Variable",
    "Verification",
    "ZoneProfile",
    "ZoneWorker",
    "check_feasibility",
    "duality_gap_bound",
    "verify_solution",
    "available_backends",
    "extract_zone_subproblems",
    "lp_sum",
    "run_protocol",
    "solve",
    "solve_branch_and_bound",
    "solve_distributed",
    "solve_scipy",
    "solve_simplex",
    "solve_transportation",
]

_BACKENDS: Dict[str, Callable[[LinearProgram], Solution]] = {
    "simplex": solve_simplex,
    "scipy": solve_scipy,
    "branch-and-bound": solve_branch_and_bound,
}


def available_backends() -> tuple:
    """Names accepted by :func:`solve`'s ``backend`` argument."""
    return tuple(sorted(_BACKENDS)) + ("auto",)


def solve(program: LinearProgram, backend: str = "auto") -> Solution:
    """Solve ``program`` with the named backend.

    ``backend="auto"`` picks ``branch-and-bound`` when integer variables
    are present and ``scipy`` (HiGHS) otherwise — mirroring how the
    paper's simulator always delegated to Gurobi.
    """
    if backend == "auto":
        backend = "branch-and-bound" if program.has_integer_variables else "scipy"
    try:
        fn = _BACKENDS[backend]
    except KeyError:
        raise SolverError(
            f"unknown LP backend {backend!r}; expected one of {available_backends()}"
        ) from None
    return fn(program)
