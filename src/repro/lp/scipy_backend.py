"""SciPy (HiGHS) backend — the reproduction's stand-in for Gurobi.

The paper solves its placement ILP with the Gurobi toolkit; this
backend lowers a :class:`repro.lp.model.LinearProgram` to
``scipy.optimize.linprog`` (continuous) or ``scipy.optimize.milp``
(when integer variables are present), both of which dispatch to the
bundled HiGHS solver.
"""

from __future__ import annotations

import time

import numpy as np
from scipy import optimize
from scipy.optimize import LinearConstraint

from repro.lp.model import LinearProgram
from repro.lp.result import Solution, SolveStatus
from repro.obs import get_registry, trace_span

_STATUS_FROM_LINPROG = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}

_STATUS_FROM_MILP = {
    0: SolveStatus.OPTIMAL,
    1: SolveStatus.ITERATION_LIMIT,  # iteration/time limit
    2: SolveStatus.INFEASIBLE,
    3: SolveStatus.UNBOUNDED,
    4: SolveStatus.ERROR,
}


def solve_scipy(program: LinearProgram) -> Solution:
    """Solve ``program`` with HiGHS via SciPy.

    Continuous programs go through :func:`scipy.optimize.linprog`;
    programs with any integer variable go through
    :func:`scipy.optimize.milp` so integrality is honored exactly.

    Parameters
    ----------
    program : LinearProgram
        The program to solve.

    Returns
    -------
    Solution
        Status, objective and variable values. Each solve also reports
        into the ``lp.scipy.*`` metrics and (when tracing is on)
        records an ``lp.scipy.solve`` span.
    """
    with trace_span(
        "lp.scipy.solve",
        variables=program.num_variables,
        integer=program.has_integer_variables,
    ):
        result = _solve_scipy_impl(program)
    registry = get_registry()
    registry.counter("lp.scipy.solves").inc()
    registry.histogram("lp.scipy.solve_seconds").observe(result.solve_time)
    return result


def _solve_scipy_impl(program: LinearProgram) -> Solution:
    start = time.perf_counter()
    dense = program.to_dense()
    n = dense.c.size
    if n == 0:
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=float(program.objective.constant),
            values={},
            backend="scipy",
            solve_time=time.perf_counter() - start,
        )

    if program.has_integer_variables:
        constraints = []
        if dense.A_ub.shape[0]:
            constraints.append(
                LinearConstraint(dense.A_ub, -np.inf * np.ones(dense.b_ub.size), dense.b_ub)
            )
        if dense.A_eq.shape[0]:
            constraints.append(LinearConstraint(dense.A_eq, dense.b_eq, dense.b_eq))
        res = optimize.milp(
            c=dense.c,
            constraints=constraints,
            bounds=optimize.Bounds(dense.lower, dense.upper),
            integrality=dense.integrality.astype(int),
        )
        status = _STATUS_FROM_MILP.get(res.status, SolveStatus.ERROR)
        x = res.x
    else:
        res = optimize.linprog(
            c=dense.c,
            A_ub=dense.A_ub if dense.A_ub.shape[0] else None,
            b_ub=dense.b_ub if dense.b_ub.size else None,
            A_eq=dense.A_eq if dense.A_eq.shape[0] else None,
            b_eq=dense.b_eq if dense.b_eq.size else None,
            bounds=np.column_stack([dense.lower, dense.upper]),
            method="highs",
        )
        status = _STATUS_FROM_LINPROG.get(res.status, SolveStatus.ERROR)
        x = res.x

    elapsed = time.perf_counter() - start
    if not status.is_optimal or x is None:
        return Solution(status=status, backend="scipy", solve_time=elapsed)

    values = {name: float(x[j]) for j, name in enumerate(dense.variable_names)}
    objective = float(dense.c @ x) + float(program.objective.constant)
    duals = _extract_duals(program, res) if not program.has_integer_variables else {}
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="scipy",
        iterations=int(getattr(res, "nit", 0) or 0),
        solve_time=elapsed,
        duals=duals,
    )


def _extract_duals(program: LinearProgram, res) -> dict:
    """Map HiGHS marginals back to constraint names.

    ``to_dense`` emits `<=` rows (with `>=` rows negated into them) in
    constraint order, then `==` rows — mirrored here so each marginal
    lands on the right name. `>=` rows get their sign flipped back.
    """
    ineq = getattr(getattr(res, "ineqlin", None), "marginals", None)
    eq = getattr(getattr(res, "eqlin", None), "marginals", None)
    duals: dict = {}
    i_ineq = 0
    i_eq = 0
    for con in program.constraints:
        if con.sense == "==":
            if eq is not None and i_eq < len(eq):
                duals[con.name] = float(eq[i_eq])
            i_eq += 1
        else:
            if ineq is not None and i_ineq < len(ineq):
                marginal = float(ineq[i_ineq])
                duals[con.name] = -marginal if con.sense == ">=" else marginal
            i_ineq += 1
    return duals
