"""From-scratch dense two-phase primal simplex.

This backend exists so the reproduction does not silently depend on a
black-box solver: it is the reference implementation against which the
specialized transportation solver and the scipy/HiGHS backend are
cross-checked in the test suite. It implements the classic tableau
method:

1. shift every variable by its (finite) lower bound so ``x >= 0``;
2. turn finite upper bounds into ``<=`` rows;
3. normalize rows to non-negative right-hand sides, adding slack,
   surplus and artificial columns as needed;
4. Phase 1 minimizes the sum of artificials (positive optimum ⇒
   infeasible), Phase 2 minimizes the true objective.

Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
(which cannot cycle) once the iteration count suggests stalling.

The implementation is vectorized row/column-wise with numpy per the
HPC guide: the inner pivot is two BLAS-level operations, not a Python
loop over the tableau.

Warm starts come in two strengths, both carried by the
:class:`SimplexBasis` a successful solve returns in ``Solution.basis``:

* **Dual re-optimization** — when the new program shares the previous
  one's exact structure (same variables, same constraint matrix, same
  objective; only bounds/RHS changed — precisely a branch-and-bound
  child or a parametric re-solve), the stored optimal tableau is still
  *dual-feasible*: only its RHS column needs recomputing (through the
  B⁻¹ block the initial identity columns carry), after which a few dual
  simplex pivots restore primal feasibility. No Phase 1 at all.
* **Primal crash** — otherwise, the remembered basic variable *names*
  are pivoted into a fresh tableau, replacing Phase 1 when the crashed
  vertex happens to be feasible.

Either path falls back to the cold two-phase solve on any mismatch, so
a warm start can change pivot counts but never the optimum.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import SolverError
from repro.lp.model import DenseForm, LinearProgram
from repro.lp.result import Solution, SolveStatus
from repro.obs import get_registry, trace_span

_EPS = 1e-9
#: Dantzig pivoting switches to Bland's rule after this many iterations
#: per (rows+cols) unit, a pragmatic anti-cycling safeguard.
_BLAND_SWITCH_FACTOR = 4
#: Minimum pivot magnitude accepted while crashing a warm basis.
_CRASH_TOL = 1e-8
#: Post-crash feasibility tolerance on the RHS column.
_CRASH_FEAS_TOL = 1e-7


@dataclass
class _Tableau:
    """Mutable simplex tableau: ``T[:-1]`` are constraint rows (with the
    RHS in the last column), ``T[-1]`` is the reduced-cost row."""

    T: np.ndarray
    basis: np.ndarray  # column index of the basic variable in each row

    @property
    def num_rows(self) -> int:
        return self.T.shape[0] - 1

    @property
    def num_cols(self) -> int:
        return self.T.shape[1] - 1


@dataclass(frozen=True)
class _WarmHandle:
    """Internal warm-start payload: the final optimal tableau plus the
    structural data needed to re-target it at a sibling program."""

    T: np.ndarray  # final tableau (constraint rows + cost row)
    basis: np.ndarray  # basic column per row
    id_cols: np.ndarray  # initial identity column per row (B^-1 block)
    sign: np.ndarray  # ±1 row normalization applied at build time
    n: int  # structural column count
    artificial_mask: np.ndarray
    c: np.ndarray  # structural objective the tableau was priced with
    A_ub: np.ndarray
    A_eq: np.ndarray
    upper_finite: Tuple[int, ...]  # which vars contributed an upper-bound row


@dataclass(frozen=True)
class SimplexBasis:
    """Warm-start handle returned in ``Solution.basis`` by the simplex.

    ``names`` lists the basic structural variables at the optimum — a
    cheap, human-readable hint usable across any same-named program via
    the primal crash. ``handle`` additionally carries the exact optimal
    tableau, enabling the much stronger dual re-optimization when the
    next program differs only in bounds/RHS (branch-and-bound children,
    parametric re-solves)."""

    names: Tuple[str, ...]
    handle: Optional[_WarmHandle] = None


def _pivot(tab: _Tableau, row: int, col: int) -> None:
    """Gauss–Jordan pivot on (row, col), vectorized over the tableau."""
    T = tab.T
    T[row] /= T[row, col]
    # Eliminate the pivot column from every other row in one outer product.
    factors = T[:, col].copy()
    factors[row] = 0.0
    T -= np.outer(factors, T[row])
    tab.basis[row] = col


def _choose_column(tab: _Tableau, allowed: np.ndarray, bland: bool) -> Optional[int]:
    """Entering column: most negative reduced cost (Dantzig) or the
    lowest-index negative one (Bland)."""
    costs = tab.T[-1, :-1]
    mask = allowed & (costs < -_EPS)
    if not mask.any():
        return None
    candidates = np.flatnonzero(mask)
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(costs[candidates])])


def _choose_row(tab: _Tableau, col: int, bland: bool) -> Optional[int]:
    """Leaving row by minimum ratio test; ``None`` means unbounded."""
    column = tab.T[:-1, col]
    rhs = tab.T[:-1, -1]
    positive = column > _EPS
    if not positive.any():
        return None
    ratios = np.full(column.shape, np.inf)
    ratios[positive] = rhs[positive] / column[positive]
    best = ratios.min()
    ties = np.flatnonzero(np.abs(ratios - best) <= _EPS * (1.0 + abs(best)))
    if bland:
        # Bland: among ties pick the row whose basic variable has the
        # smallest column index.
        return int(ties[np.argmin(tab.basis[ties])])
    return int(ties[0])


def _run_simplex(tab: _Tableau, allowed: np.ndarray, max_iter: int) -> Tuple[str, int]:
    """Iterate to optimality; returns (status, iterations)."""
    bland_after = _BLAND_SWITCH_FACTOR * (tab.num_rows + tab.num_cols)
    for iteration in range(max_iter):
        bland = iteration >= bland_after
        col = _choose_column(tab, allowed, bland)
        if col is None:
            return "optimal", iteration
        row = _choose_row(tab, col, bland)
        if row is None:
            return "unbounded", iteration
        _pivot(tab, row, col)
    return "iteration_limit", max_iter


def _assemble_rows(dense: DenseForm) -> Tuple[List[np.ndarray], List[float], List[str]]:
    """Constraint rows in canonical order, *before* sign normalization:
    ``A_ub`` rows, then ``A_eq`` rows, then one ``x_j <= upper - lower``
    row per finite upper bound. RHS is lower-bound shifted."""
    n = dense.c.size
    lower = dense.lower
    upper = dense.upper
    if not np.all(np.isfinite(lower)):
        raise SolverError(
            "simplex backend requires finite lower bounds; free variables "
            "should be split before lowering"
        )
    shift = lower

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    senses: List[str] = []
    for row, b in zip(dense.A_ub, dense.b_ub):
        rows.append(row.copy())
        rhs.append(b - float(row @ shift))
        senses.append("<=")
    for row, b in zip(dense.A_eq, dense.b_eq):
        rows.append(row.copy())
        rhs.append(b - float(row @ shift))
        senses.append("==")
    for j in np.flatnonzero(np.isfinite(upper)):
        row = np.zeros(n)
        row[j] = 1.0
        rows.append(row)
        rhs.append(float(upper[j] - lower[j]))
        senses.append("<=")
    return rows, rhs, senses


def _build_tableau(
    dense: DenseForm,
) -> Tuple[_Tableau, int, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """Assemble the Phase-1 tableau from a dense LP form.

    Returns (tableau, n_structural, shift, artificial_mask, sign,
    id_cols) where ``shift`` is the lower-bound offset applied to each
    structural variable, ``artificial_mask`` flags artificial columns,
    ``sign`` records the ±1 row normalization applied to make every RHS
    non-negative, and ``id_cols[i]`` is the column that started as the
    identity unit of row ``i`` (the final tableau's B⁻¹ lives in those
    columns — the key to dual warm restarts).
    """
    n = dense.c.size
    shift = dense.lower.copy()
    rows, rhs, senses = _assemble_rows(dense)

    m = len(rows)
    sign = np.ones(m)
    # Normalize: make all RHS non-negative.
    for i in range(m):
        if rhs[i] < 0:
            sign[i] = -1.0
            rows[i] = -rows[i]
            rhs[i] = -rhs[i]
            if senses[i] == "<=":
                senses[i] = ">="
            elif senses[i] == ">=":
                senses[i] = "<="

    n_slack = sum(1 for s in senses if s in ("<=", ">="))
    n_art = sum(1 for s in senses if s in (">=", "=="))
    width = n + n_slack + n_art + 1  # + RHS column

    T = np.zeros((m + 1, width))
    basis = np.full(m, -1, dtype=int)
    artificial_mask = np.zeros(width - 1, dtype=bool)

    slack_at = n
    art_at = n + n_slack
    for i in range(m):
        T[i, :n] = rows[i]
        T[i, -1] = rhs[i]
        if senses[i] == "<=":
            T[i, slack_at] = 1.0
            basis[i] = slack_at
            slack_at += 1
        elif senses[i] == ">=":
            T[i, slack_at] = -1.0
            slack_at += 1
            T[i, art_at] = 1.0
            artificial_mask[art_at] = True
            basis[i] = art_at
            art_at += 1
        else:  # "=="
            T[i, art_at] = 1.0
            artificial_mask[art_at] = True
            basis[i] = art_at
            art_at += 1

    id_cols = basis.copy()  # each row's initial basic column is its identity unit
    return _Tableau(T=T, basis=basis), n, shift, artificial_mask, sign, id_cols


def _crash_warm_basis(
    tab: _Tableau, hint_cols: Sequence[int], artificial_mask: np.ndarray
) -> Optional[int]:
    """Pivot the hinted structural columns into the basis, replacing
    Phase 1 when the result is primal-feasible.

    For each hinted column not yet basic, Gauss–Jordan pivots it in on
    the row with the largest admissible pivot magnitude, preferring
    rows currently held by an artificial (those are the rows a warm
    basis must reclaim). Any artificial left basic is driven out on a
    degenerate row; if one carries real value, or the crashed RHS goes
    negative, the crash is rejected and the caller falls back to a cold
    Phase 1 — so a bad hint costs pivots, never correctness.

    Returns the number of pivots performed, or ``None`` on rejection.
    """
    pivots = 0
    hinted = set(int(c) for c in hint_cols)
    basic = set(int(b) for b in tab.basis)
    for col in hint_cols:
        col = int(col)
        if col in basic:
            continue
        column = tab.T[:-1, col]
        best_row = -1
        best_key = (False, _CRASH_TOL)
        for i in range(tab.num_rows):
            b = int(tab.basis[i])
            if b in hinted:
                continue  # never evict another hinted variable
            magnitude = abs(float(column[i]))
            if magnitude <= _CRASH_TOL:
                continue
            key = (bool(artificial_mask[b]), magnitude)
            if key > best_key:
                best_key = key
                best_row = i
        if best_row < 0:
            continue  # hint is linearly dependent on the rest — skip it
        basic.discard(int(tab.basis[best_row]))
        basic.add(col)
        _pivot(tab, best_row, col)
        pivots += 1
    # Drive out any artificial still basic; it must sit on a degenerate
    # row (value ~0) or the warm basis does not cover the equalities.
    for i in range(tab.num_rows):
        b = int(tab.basis[i])
        if not artificial_mask[b]:
            continue
        if abs(float(tab.T[i, -1])) > _CRASH_FEAS_TOL:
            return None
        row = tab.T[i, :-1]
        candidates = np.flatnonzero((~artificial_mask) & (np.abs(row) > _EPS))
        if not candidates.size:
            return None
        _pivot(tab, i, int(candidates[0]))
        pivots += 1
    rhs = tab.T[:-1, -1]
    if (rhs < -_CRASH_FEAS_TOL).any():
        return None  # hinted basis is not primal-feasible here
    np.maximum(rhs, 0.0, out=rhs)
    return pivots


def _run_dual_simplex(tab: _Tableau, allowed: np.ndarray, max_iter: int) -> Tuple[str, int]:
    """Dual simplex: restore primal feasibility while reduced costs
    stay non-negative. Assumes the incoming tableau is dual-feasible
    (it came from an optimal solve of a sibling program).

    Leaving row: most negative RHS. Entering column: minimum dual ratio
    ``reduced_cost / -pivot`` over allowed columns with a negative
    entry; first-index tie-break. A row with no negative entry proves
    primal infeasibility.
    """
    for iteration in range(max_iter):
        rhs = tab.T[:-1, -1]
        row = int(np.argmin(rhs))
        if rhs[row] >= -_CRASH_FEAS_TOL:
            np.maximum(rhs, 0.0, out=rhs)
            return "optimal", iteration
        line = tab.T[row, :-1]
        eligible = allowed & (line < -_EPS)
        if not eligible.any():
            return "infeasible", iteration
        cols = np.flatnonzero(eligible)
        reduced = np.maximum(tab.T[-1, :-1][cols], 0.0)
        ratios = reduced / -line[cols]
        col = int(cols[np.argmin(ratios)])  # first min = lowest index tie-break
        _pivot(tab, row, col)
    return "iteration_limit", max_iter


def _dual_reoptimize(
    handle: _WarmHandle, dense: DenseForm, max_iter: int
) -> Optional[Tuple[str, _Tableau, int]]:
    """Re-target a stored optimal tableau at a program that differs only
    in bounds/RHS, then dual-simplex back to primal feasibility.

    The stored tableau is some row-operation image of the original
    build; the initial identity columns therefore hold exactly those
    row operations, so the new RHS column (including the objective
    cell) is one matrix-vector product away. Returns ``None`` when the
    structures differ or the dual pass gives up — callers fall back to
    the cold two-phase solve; correctness never depends on this path.
    """
    n = handle.n
    if dense.c.size != n or not np.array_equal(dense.c, handle.c):
        return None
    if tuple(np.flatnonzero(np.isfinite(dense.upper))) != handle.upper_finite:
        return None
    if dense.A_ub.shape != handle.A_ub.shape or dense.A_eq.shape != handle.A_eq.shape:
        return None
    if not (np.array_equal(dense.A_ub, handle.A_ub) and np.array_equal(dense.A_eq, handle.A_eq)):
        return None
    if not np.all(np.isfinite(dense.lower)):
        return None

    _, rhs_raw, _ = _assemble_rows(dense)
    rhs_new = handle.sign * np.asarray(rhs_raw)
    T = handle.T.copy()
    # B^-1 (and the cost row's multipliers) live in the identity columns.
    T[:, -1] = T[:, handle.id_cols] @ rhs_new
    tab = _Tableau(T=T, basis=handle.basis.copy())
    status, iters = _run_dual_simplex(tab, ~handle.artificial_mask, max_iter)
    if status == "optimal":
        # A basic artificial carrying real value means the re-targeted
        # point violates an original equality — not trustworthy.
        for i, b in enumerate(tab.basis):
            if handle.artificial_mask[b] and abs(float(tab.T[i, -1])) > _CRASH_FEAS_TOL:
                return None
    elif status == "iteration_limit":
        return None
    return status, tab, iters


def solve_simplex(
    program: LinearProgram,
    max_iter: int = 100_000,
    warm_start: Optional[object] = None,
) -> Solution:
    """Solve a continuous LP with the from-scratch two-phase simplex.

    Integer variables are relaxed; use
    :func:`repro.lp.branch_and_bound.solve_branch_and_bound` for true
    integrality.

    Parameters
    ----------
    program : LinearProgram
        The LP to solve (integrality dropped).
    max_iter : int, optional
        Safety bound on simplex pivots per phase.
    warm_start : SimplexBasis or sequence of str, optional
        Either the :class:`SimplexBasis` of a previous solve (dual
        re-optimization when the program shares the previous structure,
        primal crash of the remembered names otherwise) or a bare
        sequence of variable names (crash only). Stale or mismatched
        hints are discarded — the solve then proceeds cold, so the
        returned optimum never depends on the hint. Unknown names are
        ignored.

    Returns
    -------
    Solution
        Status, objective, variable values and pivot counts. Each solve
        also reports into the ``lp.simplex.*`` metrics and (when
        tracing is on) records an ``lp.simplex.solve`` span.
    """
    with trace_span(
        "lp.simplex.solve",
        variables=program.num_variables,
        warm=warm_start is not None,
    ):
        result = _solve_simplex_impl(program, max_iter, warm_start)
    registry = get_registry()
    registry.counter("lp.simplex.solves").inc()
    pivots = result.total_pivots or result.iterations
    if pivots:
        registry.counter("lp.simplex.iterations").inc(pivots)
    registry.histogram("lp.simplex.solve_seconds").observe(result.solve_time)
    return result


def _solve_simplex_impl(
    program: LinearProgram,
    max_iter: int = 100_000,
    warm_start: Optional[object] = None,
) -> Solution:
    start = time.perf_counter()
    dense = program.to_dense()
    n_total = dense.c.size
    if n_total == 0:
        # Degenerate but legal: feasible iff constant constraints hold.
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=float(program.objective.constant),
            values={},
            backend="simplex",
            solve_time=time.perf_counter() - start,
        )

    # ---- Warm start: dual re-optimization of a stored tableau --------------
    tab: Optional[_Tableau] = None
    total_iters = 0
    warm_used = False
    hint_names: Optional[Sequence[str]] = None
    if isinstance(warm_start, SimplexBasis):
        hint_names = warm_start.names
        if warm_start.handle is not None:
            attempt = _dual_reoptimize(warm_start.handle, dense, max_iter)
            if attempt is not None:
                dual_status, dual_tab, dual_iters = attempt
                if dual_status == "infeasible":
                    return Solution(
                        status=SolveStatus.INFEASIBLE,
                        backend="simplex",
                        iterations=dual_iters,
                        solve_time=time.perf_counter() - start,
                        total_pivots=dual_iters,
                        warm_started=True,
                    )
                handle = warm_start.handle
                tab = dual_tab
                n = handle.n
                shift = dense.lower.copy()
                artificial_mask = handle.artificial_mask
                sign = handle.sign
                id_cols = handle.id_cols
                total_iters = dual_iters
                warm_used = True
                phase1_needed = False  # dual tableau is already feasible
    elif warm_start is not None:
        hint_names = warm_start  # bare sequence of names

    if tab is None:
        tab, n, shift, artificial_mask, sign, id_cols = _build_tableau(dense)

        # ---- Phase 0: crash the warm-start basis, if one was offered -------
        phase1_needed = artificial_mask.any()
        if hint_names and phase1_needed:
            name_to_col = {name: j for j, name in enumerate(dense.variable_names)}
            hint_cols = [name_to_col[name] for name in hint_names if name in name_to_col]
            if hint_cols:
                crash_pivots = _crash_warm_basis(tab, hint_cols, artificial_mask)
                if crash_pivots is None:
                    # Crash mutated the tableau; rebuild for a cold Phase 1.
                    tab, n, shift, artificial_mask, sign, id_cols = _build_tableau(dense)
                else:
                    total_iters += crash_pivots
                    warm_used = True
                    phase1_needed = False

    # ---- Phase 1: minimize sum of artificials ------------------------------
    if phase1_needed:
        phase1_cost = np.zeros(tab.T.shape[1])
        phase1_cost[:-1][artificial_mask] = 1.0
        tab.T[-1, :] = phase1_cost
        # Price out the basic artificials so reduced costs start consistent.
        for i, b in enumerate(tab.basis):
            if artificial_mask[b]:
                tab.T[-1] -= tab.T[i]
        # Artificials are forbidden from re-entering the basis.
        allowed = ~artificial_mask
        status, iters = _run_simplex(tab, allowed, max_iter)
        total_iters += iters
        phase1_value = -tab.T[-1, -1]
        if status == "iteration_limit":
            return Solution(
                status=SolveStatus.ITERATION_LIMIT,
                backend="simplex",
                iterations=total_iters,
                solve_time=time.perf_counter() - start,
            )
        if phase1_value > 1e-6:
            return Solution(
                status=SolveStatus.INFEASIBLE,
                backend="simplex",
                iterations=total_iters,
                solve_time=time.perf_counter() - start,
            )
        # Drive any residual artificial out of the basis (degenerate rows).
        for i in range(tab.num_rows):
            if artificial_mask[tab.basis[i]]:
                row = tab.T[i, :-1]
                pivot_candidates = np.flatnonzero((~artificial_mask) & (np.abs(row) > _EPS))
                if pivot_candidates.size:
                    _pivot(tab, i, int(pivot_candidates[0]))
                # else: the row is all-zero in structural columns — redundant.

    # ---- Phase 2: true objective --------------------------------------------
    cost_row = np.zeros(tab.T.shape[1])
    cost_row[:n] = dense.c
    tab.T[-1, :] = cost_row
    for i, b in enumerate(tab.basis):
        if abs(tab.T[-1, b]) > _EPS:
            tab.T[-1] -= tab.T[-1, b] * tab.T[i]
    allowed = ~artificial_mask
    status, iters = _run_simplex(tab, allowed, max_iter)
    total_iters += iters

    if status == "unbounded":
        return Solution(
            status=SolveStatus.UNBOUNDED,
            backend="simplex",
            iterations=total_iters,
            solve_time=time.perf_counter() - start,
        )
    if status == "iteration_limit":
        return Solution(
            status=SolveStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=total_iters,
            solve_time=time.perf_counter() - start,
        )

    x = np.zeros(tab.num_cols)
    for i, b in enumerate(tab.basis):
        x[b] = tab.T[i, -1]
    values_arr = x[:n] + shift
    values = {name: float(values_arr[j]) for j, name in enumerate(dense.variable_names)}
    objective = float(dense.c @ values_arr) + float(program.objective.constant)

    # Warm-start handle for the next solve: the basic structural names
    # (crashable into any same-named program) plus the exact optimal
    # tableau (dual-restartable by same-structure siblings).
    basis = SimplexBasis(
        names=tuple(sorted(dense.variable_names[b] for b in tab.basis if b < n)),
        handle=_WarmHandle(
            T=tab.T.copy(),
            basis=tab.basis.copy(),
            id_cols=id_cols,
            sign=sign,
            n=n,
            artificial_mask=artificial_mask,
            c=dense.c.copy(),
            A_ub=dense.A_ub.copy(),
            A_eq=dense.A_eq.copy(),
            upper_finite=tuple(np.flatnonzero(np.isfinite(dense.upper))),
        ),
    )

    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="simplex",
        iterations=total_iters,
        solve_time=time.perf_counter() - start,
        basis=basis,
        total_pivots=total_iters,
        warm_started=warm_used,
    )
