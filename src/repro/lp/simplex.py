"""From-scratch dense two-phase primal simplex.

This backend exists so the reproduction does not silently depend on a
black-box solver: it is the reference implementation against which the
specialized transportation solver and the scipy/HiGHS backend are
cross-checked in the test suite. It implements the classic tableau
method:

1. shift every variable by its (finite) lower bound so ``x >= 0``;
2. turn finite upper bounds into ``<=`` rows;
3. normalize rows to non-negative right-hand sides, adding slack,
   surplus and artificial columns as needed;
4. Phase 1 minimizes the sum of artificials (positive optimum ⇒
   infeasible), Phase 2 minimizes the true objective.

Pivoting uses Dantzig's rule with an automatic switch to Bland's rule
(which cannot cycle) once the iteration count suggests stalling.

The implementation is vectorized row/column-wise with numpy per the
HPC guide: the inner pivot is two BLAS-level operations, not a Python
loop over the tableau.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.errors import SolverError
from repro.lp.model import DenseForm, LinearProgram
from repro.lp.result import Solution, SolveStatus

_EPS = 1e-9
#: Dantzig pivoting switches to Bland's rule after this many iterations
#: per (rows+cols) unit, a pragmatic anti-cycling safeguard.
_BLAND_SWITCH_FACTOR = 4


@dataclass
class _Tableau:
    """Mutable simplex tableau: ``T[:-1]`` are constraint rows (with the
    RHS in the last column), ``T[-1]`` is the reduced-cost row."""

    T: np.ndarray
    basis: np.ndarray  # column index of the basic variable in each row

    @property
    def num_rows(self) -> int:
        return self.T.shape[0] - 1

    @property
    def num_cols(self) -> int:
        return self.T.shape[1] - 1


def _pivot(tab: _Tableau, row: int, col: int) -> None:
    """Gauss–Jordan pivot on (row, col), vectorized over the tableau."""
    T = tab.T
    T[row] /= T[row, col]
    # Eliminate the pivot column from every other row in one outer product.
    factors = T[:, col].copy()
    factors[row] = 0.0
    T -= np.outer(factors, T[row])
    tab.basis[row] = col


def _choose_column(tab: _Tableau, allowed: np.ndarray, bland: bool) -> Optional[int]:
    """Entering column: most negative reduced cost (Dantzig) or the
    lowest-index negative one (Bland)."""
    costs = tab.T[-1, :-1]
    mask = allowed & (costs < -_EPS)
    if not mask.any():
        return None
    candidates = np.flatnonzero(mask)
    if bland:
        return int(candidates[0])
    return int(candidates[np.argmin(costs[candidates])])


def _choose_row(tab: _Tableau, col: int, bland: bool) -> Optional[int]:
    """Leaving row by minimum ratio test; ``None`` means unbounded."""
    column = tab.T[:-1, col]
    rhs = tab.T[:-1, -1]
    positive = column > _EPS
    if not positive.any():
        return None
    ratios = np.full(column.shape, np.inf)
    ratios[positive] = rhs[positive] / column[positive]
    best = ratios.min()
    ties = np.flatnonzero(np.abs(ratios - best) <= _EPS * (1.0 + abs(best)))
    if bland:
        # Bland: among ties pick the row whose basic variable has the
        # smallest column index.
        return int(ties[np.argmin(tab.basis[ties])])
    return int(ties[0])


def _run_simplex(tab: _Tableau, allowed: np.ndarray, max_iter: int) -> Tuple[str, int]:
    """Iterate to optimality; returns (status, iterations)."""
    bland_after = _BLAND_SWITCH_FACTOR * (tab.num_rows + tab.num_cols)
    for iteration in range(max_iter):
        bland = iteration >= bland_after
        col = _choose_column(tab, allowed, bland)
        if col is None:
            return "optimal", iteration
        row = _choose_row(tab, col, bland)
        if row is None:
            return "unbounded", iteration
        _pivot(tab, row, col)
    return "iteration_limit", max_iter


def _build_tableau(dense: DenseForm) -> Tuple[_Tableau, int, np.ndarray, np.ndarray]:
    """Assemble the Phase-1 tableau from a dense LP form.

    Returns (tableau, n_structural, shift, artificial_mask) where
    ``shift`` is the lower-bound offset applied to each structural
    variable and ``artificial_mask`` flags artificial columns.
    """
    n = dense.c.size
    lower = dense.lower
    upper = dense.upper
    if not np.all(np.isfinite(lower)):
        raise SolverError(
            "simplex backend requires finite lower bounds; free variables "
            "should be split before lowering"
        )

    rows: List[np.ndarray] = []
    rhs: List[float] = []
    senses: List[str] = []

    shift = lower.copy()

    def _shifted_rhs(row: np.ndarray, b: float) -> float:
        return b - float(row @ shift)

    for row, b in zip(dense.A_ub, dense.b_ub):
        rows.append(row.copy())
        rhs.append(_shifted_rhs(row, b))
        senses.append("<=")
    for row, b in zip(dense.A_eq, dense.b_eq):
        rows.append(row.copy())
        rhs.append(_shifted_rhs(row, b))
        senses.append("==")
    # Finite upper bounds become x_j <= upper - lower rows.
    for j in np.flatnonzero(np.isfinite(upper)):
        row = np.zeros(n)
        row[j] = 1.0
        rows.append(row)
        rhs.append(float(upper[j] - lower[j]))
        senses.append("<=")

    m = len(rows)
    # Normalize: make all RHS non-negative.
    for i in range(m):
        if rhs[i] < 0:
            rows[i] = -rows[i]
            rhs[i] = -rhs[i]
            if senses[i] == "<=":
                senses[i] = ">="
            elif senses[i] == ">=":
                senses[i] = "<="

    n_slack = sum(1 for s in senses if s in ("<=", ">="))
    n_art = sum(1 for s in senses if s in (">=", "=="))
    width = n + n_slack + n_art + 1  # + RHS column

    T = np.zeros((m + 1, width))
    basis = np.full(m, -1, dtype=int)
    artificial_mask = np.zeros(width - 1, dtype=bool)

    slack_at = n
    art_at = n + n_slack
    for i in range(m):
        T[i, :n] = rows[i]
        T[i, -1] = rhs[i]
        if senses[i] == "<=":
            T[i, slack_at] = 1.0
            basis[i] = slack_at
            slack_at += 1
        elif senses[i] == ">=":
            T[i, slack_at] = -1.0
            slack_at += 1
            T[i, art_at] = 1.0
            artificial_mask[art_at] = True
            basis[i] = art_at
            art_at += 1
        else:  # "=="
            T[i, art_at] = 1.0
            artificial_mask[art_at] = True
            basis[i] = art_at
            art_at += 1

    return _Tableau(T=T, basis=basis), n, shift, artificial_mask


def solve_simplex(program: LinearProgram, max_iter: int = 100_000) -> Solution:
    """Solve a continuous LP with the from-scratch two-phase simplex.

    Integer variables are relaxed; use
    :func:`repro.lp.branch_and_bound.solve_branch_and_bound` for true
    integrality.
    """
    start = time.perf_counter()
    dense = program.to_dense()
    n_total = dense.c.size
    if n_total == 0:
        # Degenerate but legal: feasible iff constant constraints hold.
        return Solution(
            status=SolveStatus.OPTIMAL,
            objective=float(program.objective.constant),
            values={},
            backend="simplex",
            solve_time=time.perf_counter() - start,
        )

    tab, n, shift, artificial_mask = _build_tableau(dense)
    total_iters = 0

    # ---- Phase 1: minimize sum of artificials ------------------------------
    if artificial_mask.any():
        phase1_cost = np.zeros(tab.T.shape[1])
        phase1_cost[:-1][artificial_mask] = 1.0
        tab.T[-1, :] = phase1_cost
        # Price out the basic artificials so reduced costs start consistent.
        for i, b in enumerate(tab.basis):
            if artificial_mask[b]:
                tab.T[-1] -= tab.T[i]
        # Artificials are forbidden from re-entering the basis.
        allowed = ~artificial_mask
        status, iters = _run_simplex(tab, allowed, max_iter)
        total_iters += iters
        phase1_value = -tab.T[-1, -1]
        if status == "iteration_limit":
            return Solution(
                status=SolveStatus.ITERATION_LIMIT,
                backend="simplex",
                iterations=total_iters,
                solve_time=time.perf_counter() - start,
            )
        if phase1_value > 1e-6:
            return Solution(
                status=SolveStatus.INFEASIBLE,
                backend="simplex",
                iterations=total_iters,
                solve_time=time.perf_counter() - start,
            )
        # Drive any residual artificial out of the basis (degenerate rows).
        for i in range(tab.num_rows):
            if artificial_mask[tab.basis[i]]:
                row = tab.T[i, :-1]
                pivot_candidates = np.flatnonzero((~artificial_mask) & (np.abs(row) > _EPS))
                if pivot_candidates.size:
                    _pivot(tab, i, int(pivot_candidates[0]))
                # else: the row is all-zero in structural columns — redundant.

    # ---- Phase 2: true objective --------------------------------------------
    cost_row = np.zeros(tab.T.shape[1])
    cost_row[:n] = dense.c
    tab.T[-1, :] = cost_row
    for i, b in enumerate(tab.basis):
        if abs(tab.T[-1, b]) > _EPS:
            tab.T[-1] -= tab.T[-1, b] * tab.T[i]
    allowed = ~artificial_mask
    status, iters = _run_simplex(tab, allowed, max_iter)
    total_iters += iters

    if status == "unbounded":
        return Solution(
            status=SolveStatus.UNBOUNDED,
            backend="simplex",
            iterations=total_iters,
            solve_time=time.perf_counter() - start,
        )
    if status == "iteration_limit":
        return Solution(
            status=SolveStatus.ITERATION_LIMIT,
            backend="simplex",
            iterations=total_iters,
            solve_time=time.perf_counter() - start,
        )

    x = np.zeros(tab.num_cols)
    for i, b in enumerate(tab.basis):
        x[b] = tab.T[i, -1]
    values_arr = x[:n] + shift
    values = {name: float(values_arr[j]) for j, name in enumerate(dense.variable_names)}
    objective = float(dense.c @ values_arr) + float(program.objective.constant)

    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=objective,
        values=values,
        backend="simplex",
        iterations=total_iters,
        solve_time=time.perf_counter() - start,
    )
