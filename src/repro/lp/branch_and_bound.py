"""Depth-first branch-and-bound MILP solver over the simplex backend.

The paper calls its placement formulation an ILP even though the
published decision variable ``x_ij`` is continuous. For completeness —
and for the *integral-agent* variant where whole monitor agents (not
fractional capacity) are relocated — this module provides exact
integrality on top of :func:`repro.lp.simplex.solve_simplex` via
classic LP-relaxation branch and bound:

* solve the relaxation;
* if some integer variable is fractional, branch on the most
  fractional one with ``floor``/``ceil`` bound splits;
* prune nodes whose relaxation bound cannot beat the incumbent.

Child relaxations warm-start from their parent's optimal basis. A
child differs from its parent only in one variable's bound — the exact
parametric case the simplex backend's dual re-optimization handles: the
parent's optimal tableau stays *dual*-feasible, so the child only needs
the few dual pivots that restore primal feasibility, instead of a full
cold two-phase solve (a primal crash of the parent basis cannot work
here: the parent optimum violates the child's new bound by
construction). ``Solution.total_pivots`` reports simplex pivots summed
over the whole tree — the quantity the warm start shrinks.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.lp.model import INF, LinearProgram
from repro.lp.result import Solution, SolveStatus
from repro.lp.simplex import SimplexBasis, solve_simplex
from repro.obs import get_registry, trace_span

_INT_TOL = 1e-6


@dataclass
class _Node:
    """A subproblem: extra bounds layered onto the root program."""

    bounds: Dict[str, Tuple[float, float]]
    depth: int
    #: Parent's optimal basis (tableau handle included), used to
    #: warm-start this node's relaxation. ``None`` at the root.
    basis_hint: Optional[SimplexBasis] = None


def _clone_with_bounds(
    program: LinearProgram, bounds: Dict[str, Tuple[float, float]]
) -> LinearProgram:
    """Rebuild ``program`` with tightened variable bounds (relaxed ints)."""
    clone = LinearProgram(program.name + "-node")
    mapping = {}
    for var in program.variables:
        lo, hi = bounds.get(var.name, (var.lower, var.upper))
        mapping[var] = clone.add_variable(var.name, lower=lo, upper=hi, is_integer=False)
    for con in program.constraints:
        expr = None
        for var, coef in con.expr.terms.items():
            term = coef * mapping[var]
            expr = term if expr is None else expr + term
        if expr is None:  # constant constraint; preserve as trivial row
            continue
        if con.sense == "<=":
            clone.add_constraint(expr <= con.rhs, name=con.name)
        elif con.sense == ">=":
            clone.add_constraint(expr >= con.rhs, name=con.name)
        else:
            clone.add_constraint(expr == con.rhs, name=con.name)
    obj = None
    for var, coef in program.objective.terms.items():
        term = coef * mapping[var]
        obj = term if obj is None else obj + term
    if obj is not None:
        clone.set_objective(obj + program.objective.constant)
    else:
        clone.set_objective(program.objective.constant)
    return clone


def _most_fractional(
    program: LinearProgram, values: Dict[str, float]
) -> Optional[Tuple[str, float]]:
    """Integer variable whose value is farthest from integrality."""
    best_name: Optional[str] = None
    best_frac = _INT_TOL
    for var in program.variables:
        if not var.is_integer:
            continue
        val = values.get(var.name, 0.0)
        frac = abs(val - round(val))
        if frac > best_frac:
            best_frac = frac
            best_name = var.name
    if best_name is None:
        return None
    return best_name, values[best_name]


def solve_branch_and_bound(
    program: LinearProgram,
    max_nodes: int = 10_000,
    gap_tol: float = 1e-9,
    warm_start: bool = True,
) -> Solution:
    """Exact MILP solve; falls back to a single LP when no var is integer.

    Parameters
    ----------
    program : LinearProgram
        The MILP (or LP) to solve.
    max_nodes : int, optional
        Budget on branch-and-bound nodes explored.
    gap_tol : float, optional
        Incumbent-vs-bound tolerance used for pruning.
    warm_start : bool, optional
        ``False`` disables the parent-basis crash in child relaxations
        (every node runs a cold two-phase solve) — kept for the
        benchmark's cold baseline and for debugging pivot-count diffs.

    Returns
    -------
    Solution
        Incumbent solution; ``iterations`` is the node count. Each
        solve also reports into the ``lp.bnb.*`` metrics and (when
        tracing is on) records an ``lp.bnb.solve`` span.
    """
    with trace_span(
        "lp.bnb.solve", variables=program.num_variables, warm=bool(warm_start)
    ):
        result = _solve_branch_and_bound_impl(program, max_nodes, gap_tol, warm_start)
    registry = get_registry()
    registry.counter("lp.bnb.solves").inc()
    if result.iterations:
        registry.counter("lp.bnb.nodes").inc(result.iterations)
    registry.histogram("lp.bnb.solve_seconds").observe(result.solve_time)
    return result


def _solve_branch_and_bound_impl(
    program: LinearProgram,
    max_nodes: int = 10_000,
    gap_tol: float = 1e-9,
    warm_start: bool = True,
) -> Solution:
    start = time.perf_counter()
    if not program.has_integer_variables:
        sol = solve_simplex(program)
        return Solution(
            status=sol.status,
            objective=sol.objective,
            values=sol.values,
            backend="branch-and-bound",
            iterations=sol.iterations,
            solve_time=time.perf_counter() - start,
            basis=sol.basis,
            total_pivots=sol.total_pivots,
        )

    incumbent: Optional[Solution] = None
    incumbent_obj = math.inf
    stack: List[_Node] = [_Node(bounds={}, depth=0)]
    explored = 0
    total_pivots = 0

    while stack and explored < max_nodes:
        node = stack.pop()
        explored += 1
        relaxed = _clone_with_bounds(program, node.bounds)
        sol = solve_simplex(relaxed, warm_start=node.basis_hint if warm_start else None)
        total_pivots += sol.total_pivots or sol.iterations
        if sol.status is SolveStatus.UNBOUNDED and not node.bounds:
            return Solution(
                status=SolveStatus.UNBOUNDED,
                backend="branch-and-bound",
                iterations=explored,
                solve_time=time.perf_counter() - start,
                total_pivots=total_pivots,
            )
        if not sol.status.is_optimal:
            continue  # infeasible subtree (or pathological) — prune
        if sol.objective >= incumbent_obj - gap_tol:
            continue  # bound prune
        branch = _most_fractional(program, dict(sol.values))
        if branch is None:
            incumbent = sol
            incumbent_obj = sol.objective
            continue
        name, value = branch
        var = program.variable(name)
        lo, hi = node.bounds.get(name, (var.lower, var.upper))
        floor_v, ceil_v = math.floor(value), math.ceil(value)
        down = dict(node.bounds)
        down[name] = (lo, min(hi, float(floor_v)))
        up = dict(node.bounds)
        up[name] = (max(lo, float(ceil_v)), hi)
        # Children differ from the parent only in one variable's bound,
        # exactly the dual-restart case: hand down the parent's full
        # tableau handle. The crash-fallback names drop the branch
        # variable — the parent optimum violates both children's new
        # bound, so a primal crash including it could never be feasible.
        hint: Optional[SimplexBasis] = None
        if warm_start and isinstance(sol.basis, SimplexBasis):
            hint = SimplexBasis(
                names=tuple(b for b in sol.basis.names if b != name),
                handle=sol.basis.handle,
            )
        # DFS: push the "down" branch last so it is explored first —
        # rounding down tends to stay feasible for packing problems.
        if up[name][0] <= up[name][1] + 1e-12:
            stack.append(_Node(bounds=up, depth=node.depth + 1, basis_hint=hint))
        if down[name][0] <= down[name][1] + 1e-12:
            stack.append(_Node(bounds=down, depth=node.depth + 1, basis_hint=hint))

    elapsed = time.perf_counter() - start
    if incumbent is None:
        status = SolveStatus.ITERATION_LIMIT if stack else SolveStatus.INFEASIBLE
        return Solution(
            status=status,
            backend="branch-and-bound",
            iterations=explored,
            solve_time=elapsed,
            total_pivots=total_pivots,
        )
    return Solution(
        status=SolveStatus.OPTIMAL,
        objective=incumbent.objective,
        values={k: float(round(v)) if program.variable(k).is_integer else v
                for k, v in incumbent.values.items()},
        backend="branch-and-bound",
        iterations=explored,
        solve_time=elapsed,
        total_pivots=total_pivots,
    )
