"""Algebraic LP/ILP modeling layer.

This is the reproduction's substitute for the Gurobi Python API used by
the paper's optimization simulator: variables, linear expressions built
with operator overloading, ``<=``/``>=``/``==`` constraints, and a
:class:`LinearProgram` container that lowers the model to dense numpy
arrays for the backends in :mod:`repro.lp.simplex`,
:mod:`repro.lp.transportation` and :mod:`repro.lp.scipy_backend`.

Example
-------
>>> lp = LinearProgram("demo")
>>> x = lp.add_variable("x", lower=0.0)
>>> y = lp.add_variable("y", lower=0.0)
>>> lp.add_constraint(x + 2 * y <= 14, name="cap")
>>> lp.add_constraint(3 * x - y >= 0)
>>> lp.set_objective(-x - y)  # maximize x + y
>>> lp.num_variables, lp.num_constraints
(2, 2)
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Tuple, Union

import numpy as np

from repro.errors import SolverError

Number = Union[int, float]

#: Sentinel for an unbounded-above variable.
INF = math.inf


class LinExpr:
    """An affine expression ``sum(coef_i * var_i) + constant``.

    Immutable in spirit: arithmetic operators return new expressions.
    Coefficients are keyed by :class:`Variable` objects (hashable by
    identity), so two distinct variables may share a display name
    without colliding — although :class:`LinearProgram` forbids
    duplicate names at registration time anyway.
    """

    __slots__ = ("terms", "constant")

    def __init__(
        self,
        terms: Optional[Mapping["Variable", float]] = None,
        constant: float = 0.0,
    ) -> None:
        self.terms: Dict[Variable, float] = dict(terms or {})
        self.constant = float(constant)

    # -- construction helpers -------------------------------------------------
    def copy(self) -> "LinExpr":
        return LinExpr(self.terms, self.constant)

    def _add_inplace(self, other: Union["LinExpr", "Variable", Number], sign: float) -> "LinExpr":
        if isinstance(other, Variable):
            self.terms[other] = self.terms.get(other, 0.0) + sign
        elif isinstance(other, LinExpr):
            for var, coef in other.terms.items():
                self.terms[var] = self.terms.get(var, 0.0) + sign * coef
            self.constant += sign * other.constant
        elif isinstance(other, (int, float)):
            self.constant += sign * other
        else:  # pragma: no cover - defensive
            return NotImplemented
        return self

    # -- operators -------------------------------------------------------------
    def __add__(self, other: Union["LinExpr", "Variable", Number]) -> "LinExpr":
        return self.copy()._add_inplace(other, 1.0)

    __radd__ = __add__

    def __sub__(self, other: Union["LinExpr", "Variable", Number]) -> "LinExpr":
        return self.copy()._add_inplace(other, -1.0)

    def __rsub__(self, other: Union["LinExpr", "Variable", Number]) -> "LinExpr":
        return (-self).__add__(other)

    def __neg__(self) -> "LinExpr":
        return self * -1.0

    def __mul__(self, factor: Number) -> "LinExpr":
        if not isinstance(factor, (int, float)):
            return NotImplemented
        return LinExpr(
            {var: coef * factor for var, coef in self.terms.items()},
            self.constant * factor,
        )

    __rmul__ = __mul__

    def __truediv__(self, factor: Number) -> "LinExpr":
        return self * (1.0 / factor)

    # -- comparisons build constraints ------------------------------------------
    def __le__(self, rhs: Union["LinExpr", "Variable", Number]) -> "Constraint":
        return Constraint.from_sides(self, rhs, "<=")

    def __ge__(self, rhs: Union["LinExpr", "Variable", Number]) -> "Constraint":
        return Constraint.from_sides(self, rhs, ">=")

    def __eq__(self, rhs: object) -> "Constraint":  # type: ignore[override]
        if isinstance(rhs, (LinExpr, Variable, int, float)):
            return Constraint.from_sides(self, rhs, "==")
        return NotImplemented

    __hash__ = None  # type: ignore[assignment]

    # -- evaluation --------------------------------------------------------------
    def evaluate(self, assignment: Mapping[str, float]) -> float:
        """Value of the expression under ``{variable name: value}``."""
        total = self.constant
        for var, coef in self.terms.items():
            total += coef * assignment.get(var.name, 0.0)
        return total

    def __repr__(self) -> str:
        parts = [f"{coef:+g}*{var.name}" for var, coef in self.terms.items()]
        if self.constant or not parts:
            parts.append(f"{self.constant:+g}")
        return " ".join(parts)


class Variable:
    """A decision variable with bounds and optional integrality.

    The paper's decision variable ``x_ij`` (amount of monitoring
    capacity offloaded from Busy node *i* to candidate *j*) is a
    continuous non-negative variable; integrality is supported so the
    formulation can also be solved as a true ILP
    (:mod:`repro.lp.branch_and_bound`).
    """

    __slots__ = ("name", "lower", "upper", "is_integer", "index")

    def __init__(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = INF,
        is_integer: bool = False,
        index: int = -1,
    ) -> None:
        if lower > upper:
            raise SolverError(f"variable {name!r}: lower bound {lower} > upper bound {upper}")
        self.name = name
        self.lower = float(lower)
        self.upper = float(upper)
        self.is_integer = bool(is_integer)
        self.index = index

    # Arithmetic promotes to LinExpr.
    def _expr(self) -> LinExpr:
        return LinExpr({self: 1.0})

    def __add__(self, other):
        return self._expr() + other

    __radd__ = __add__

    def __sub__(self, other):
        return self._expr() - other

    def __rsub__(self, other):
        return (-self._expr()) + other

    def __neg__(self):
        return self._expr() * -1.0

    def __mul__(self, factor):
        return self._expr() * factor

    __rmul__ = __mul__

    def __truediv__(self, factor):
        return self._expr() / factor

    def __le__(self, rhs):
        return self._expr() <= rhs

    def __ge__(self, rhs):
        return self._expr() >= rhs

    def __eq__(self, rhs):  # type: ignore[override]
        if isinstance(rhs, (LinExpr, Variable, int, float)):
            return self._expr() == rhs
        return NotImplemented

    def __hash__(self) -> int:
        return id(self)

    def __repr__(self) -> str:
        kind = "int" if self.is_integer else "cont"
        return f"Variable({self.name!r}, [{self.lower}, {self.upper}], {kind})"


@dataclass
class Constraint:
    """A linear constraint ``expr (sense) rhs`` in canonical form.

    ``expr`` holds all variable terms; the scalar right-hand side has
    been normalized so that ``expr.constant == 0``.
    """

    expr: LinExpr
    sense: str  # "<=", ">=", "=="
    rhs: float
    name: str = ""

    @staticmethod
    def from_sides(
        lhs: Union[LinExpr, Variable, Number],
        rhs: Union[LinExpr, Variable, Number],
        sense: str,
    ) -> "Constraint":
        """Build a constraint from free-form ``lhs (sense) rhs`` sides."""
        expr = LinExpr()
        expr = expr._add_inplace(lhs, 1.0)
        expr = expr._add_inplace(rhs, -1.0)
        rhs_value = -expr.constant
        expr.constant = 0.0
        return Constraint(expr=expr, sense=sense, rhs=rhs_value)

    def violation(self, assignment: Mapping[str, float]) -> float:
        """Amount by which ``assignment`` violates the constraint (≥ 0)."""
        lhs = self.expr.evaluate(assignment)
        if self.sense == "<=":
            return max(0.0, lhs - self.rhs)
        if self.sense == ">=":
            return max(0.0, self.rhs - lhs)
        return abs(lhs - self.rhs)


@dataclass
class DenseForm:
    """Dense matrix form of an LP, consumed by the numeric backends.

    minimize ``c @ x`` subject to
    ``A_ub @ x <= b_ub``, ``A_eq @ x == b_eq``, ``lower <= x <= upper``.
    """

    c: np.ndarray
    A_ub: np.ndarray
    b_ub: np.ndarray
    A_eq: np.ndarray
    b_eq: np.ndarray
    lower: np.ndarray
    upper: np.ndarray
    integrality: np.ndarray
    variable_names: List[str] = field(default_factory=list)


class LinearProgram:
    """A minimization LP/ILP assembled incrementally.

    The API intentionally mirrors the subset of ``gurobipy`` /
    ``pulp`` used by the paper's simulator: ``add_variable``,
    ``add_constraint``, ``set_objective`` (always *minimize*, matching
    Eq. 3's min-cost objective β).
    """

    def __init__(self, name: str = "lp") -> None:
        self.name = name
        self._variables: List[Variable] = []
        self._by_name: Dict[str, Variable] = {}
        self._constraints: List[Constraint] = []
        self._objective = LinExpr()

    # -- model building ---------------------------------------------------------
    def add_variable(
        self,
        name: str,
        lower: float = 0.0,
        upper: float = INF,
        is_integer: bool = False,
    ) -> Variable:
        """Register a new decision variable and return its handle."""
        if name in self._by_name:
            raise SolverError(f"duplicate variable name {name!r} in program {self.name!r}")
        var = Variable(name, lower, upper, is_integer, index=len(self._variables))
        self._variables.append(var)
        self._by_name[name] = var
        return var

    def add_constraint(self, constraint: Constraint, name: str = "") -> Constraint:
        """Attach a constraint produced by expression comparison."""
        if not isinstance(constraint, Constraint):
            raise SolverError(
                "add_constraint expects an expression comparison such as "
                "`x + y <= 3`; got " + repr(constraint)
            )
        for var in constraint.expr.terms:
            if self._by_name.get(var.name) is not var:
                raise SolverError(
                    f"constraint references variable {var.name!r} that is not "
                    f"registered with program {self.name!r}"
                )
        if name:
            constraint.name = name
        elif not constraint.name:
            constraint.name = f"c{len(self._constraints)}"
        self._constraints.append(constraint)
        return constraint

    def set_objective(self, expr: Union[LinExpr, Variable, Number]) -> None:
        """Set the (minimization) objective."""
        holder = LinExpr()
        holder._add_inplace(expr, 1.0)
        self._objective = holder

    # -- introspection ------------------------------------------------------------
    @property
    def variables(self) -> Tuple[Variable, ...]:
        return tuple(self._variables)

    @property
    def constraints(self) -> Tuple[Constraint, ...]:
        return tuple(self._constraints)

    @property
    def objective(self) -> LinExpr:
        return self._objective

    @property
    def num_variables(self) -> int:
        return len(self._variables)

    @property
    def num_constraints(self) -> int:
        return len(self._constraints)

    @property
    def has_integer_variables(self) -> bool:
        return any(v.is_integer for v in self._variables)

    def variable(self, name: str) -> Variable:
        """Look up a registered variable by name."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SolverError(f"unknown variable {name!r}") from None

    def __iter__(self) -> Iterator[Variable]:
        return iter(self._variables)

    # -- lowering -------------------------------------------------------------------
    def to_dense(self) -> DenseForm:
        """Lower the model to dense arrays (ub rows, eq rows, bounds)."""
        n = len(self._variables)
        c = np.zeros(n)
        for var, coef in self._objective.terms.items():
            c[var.index] += coef

        ub_rows: List[np.ndarray] = []
        ub_rhs: List[float] = []
        eq_rows: List[np.ndarray] = []
        eq_rhs: List[float] = []
        for con in self._constraints:
            row = np.zeros(n)
            for var, coef in con.expr.terms.items():
                row[var.index] += coef
            if con.sense == "<=":
                ub_rows.append(row)
                ub_rhs.append(con.rhs)
            elif con.sense == ">=":
                ub_rows.append(-row)
                ub_rhs.append(-con.rhs)
            elif con.sense == "==":
                eq_rows.append(row)
                eq_rhs.append(con.rhs)
            else:  # pragma: no cover - Constraint.from_sides guards this
                raise SolverError(f"unknown constraint sense {con.sense!r}")

        return DenseForm(
            c=c,
            A_ub=np.array(ub_rows).reshape(len(ub_rows), n) if ub_rows else np.zeros((0, n)),
            b_ub=np.asarray(ub_rhs, dtype=float),
            A_eq=np.array(eq_rows).reshape(len(eq_rows), n) if eq_rows else np.zeros((0, n)),
            b_eq=np.asarray(eq_rhs, dtype=float),
            lower=np.array([v.lower for v in self._variables]),
            upper=np.array([v.upper for v in self._variables]),
            integrality=np.array([v.is_integer for v in self._variables], dtype=bool),
            variable_names=[v.name for v in self._variables],
        )

    def evaluate_objective(self, assignment: Mapping[str, float]) -> float:
        """Objective value of an assignment ``{name: value}``."""
        return self._objective.evaluate(assignment)

    def is_feasible(self, assignment: Mapping[str, float], tol: float = 1e-7) -> bool:
        """Check constraints *and* bounds under ``assignment``."""
        for var in self._variables:
            val = assignment.get(var.name, 0.0)
            if val < var.lower - tol or val > var.upper + tol:
                return False
        return all(con.violation(assignment) <= tol for con in self._constraints)

    def __repr__(self) -> str:
        return (
            f"LinearProgram({self.name!r}, vars={self.num_variables}, "
            f"cons={self.num_constraints})"
        )


def lp_sum(items: Iterable[Union[LinExpr, Variable, Number]]) -> LinExpr:
    """Sum an iterable of expressions/variables/numbers into a LinExpr.

    Equivalent of ``gurobipy.quicksum`` — avoids quadratic blowup from
    ``sum()`` building throwaway intermediates.
    """
    total = LinExpr()
    for item in items:
        total._add_inplace(item, 1.0)
    return total
